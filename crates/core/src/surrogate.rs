//! Rank-based surrogate screening for the evaluation matrix.
//!
//! Every CARBON generation pays one exact lower-level decode per unique
//! (scorer, pricing) cell, yet most cells only matter for *ranking* the
//! heuristics against each other. Following the rank-based upper-level
//! value-function approximation literature (and CR-BLEA's contrastive
//! ranking), this module fits a cheap regularized linear ranker online
//! from the exact outcomes the run has already paid for, and the CARBON
//! variants use it to decide which cells deserve an exact decode and
//! which can be imputed from predicted rank (see DESIGN.md §6.7).
//!
//! The module is deliberately dependency-free pure math: feature
//! assembly from probe scores lives in [`cell_features`], the ridge
//! ranker in [`RankSurrogate`], and the gate policy in [`select_exact`].
//! Nothing here touches an RNG — fitting, prediction, and the
//! exploration rotation are all deterministic functions of their inputs,
//! which is what keeps gated runs reproducible per seed and
//! [`SurrogateGate::Off`] trivially bit-identical to pre-surrogate
//! builds (asserted by `tests/surrogate_determinism.rs`).

/// Number of features the ranker consumes per evaluation-matrix cell.
pub const NUM_FEATURES: usize = 8;

/// Default fraction of unique cells evaluated exactly under
/// [`SurrogateGate::TopK`].
pub const DEFAULT_TOPK_FRAC: f64 = 0.25;

/// Default exploration fraction (cells decoded exactly regardless of
/// predicted rank, on a deterministic rotation).
pub const DEFAULT_EXPLORE_FRAC: f64 = 0.05;

/// Minimum observed (feature, rank) pairs before predictions are
/// trusted; below this every cell is evaluated exactly while the model
/// warms up.
pub const MIN_FIT_SAMPLES: u64 = 2 * NUM_FEATURES as u64;

/// How the evaluation matrix is gated by the surrogate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SurrogateGate {
    /// No gating: every unique cell decodes exactly (the pre-surrogate
    /// behaviour, bit-identical to builds without this module).
    #[default]
    Off,
    /// Score all unique cells with the surrogate, decode only the
    /// predicted-best `frac` of them exactly (plus an `explore`
    /// fraction on a deterministic rotation and every champion/elite
    /// pinned cell), and impute the rest from predicted rank.
    TopK {
        /// Fraction of unique cells decoded exactly, in `[0, 1]`.
        frac: f64,
        /// Extra exploration fraction decoded exactly regardless of
        /// predicted rank, in `[0, 1]`.
        explore: f64,
    },
}

impl SurrogateGate {
    /// Stable lower-case name (used in docs and CLI output).
    pub fn as_str(self) -> &'static str {
        match self {
            SurrogateGate::Off => "off",
            SurrogateGate::TopK { .. } => "topk",
        }
    }

    /// The default gated configuration (`topk` with the default
    /// fractions).
    pub fn top_k() -> Self {
        SurrogateGate::TopK { frac: DEFAULT_TOPK_FRAC, explore: DEFAULT_EXPLORE_FRAC }
    }
}

impl std::str::FromStr for SurrogateGate {
    type Err = String;

    /// Accepts `off`, `topk`, `topk:FRAC`, or `topk:FRAC:EXPLORE`
    /// (fractions clamped to `[0, 1]`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "off" {
            return Ok(SurrogateGate::Off);
        }
        let mut parts = s.split(':');
        match parts.next() {
            Some("topk") => {}
            _ => {
                return Err(format!(
                    "unknown surrogate gate '{s}' (expected off, topk, topk:FRAC, or topk:FRAC:EXPLORE)"
                ))
            }
        }
        let mut frac = DEFAULT_TOPK_FRAC;
        let mut explore = DEFAULT_EXPLORE_FRAC;
        if let Some(f) = parts.next() {
            frac = f
                .parse::<f64>()
                .map_err(|_| format!("bad top-k fraction '{f}' in surrogate gate '{s}'"))?;
        }
        if let Some(e) = parts.next() {
            explore = e
                .parse::<f64>()
                .map_err(|_| format!("bad explore fraction '{e}' in surrogate gate '{s}'"))?;
        }
        if parts.next().is_some() {
            return Err(format!("too many ':' fields in surrogate gate '{s}'"));
        }
        if !frac.is_finite() || !explore.is_finite() {
            return Err(format!("non-finite fraction in surrogate gate '{s}'"));
        }
        Ok(SurrogateGate::TopK { frac: frac.clamp(0.0, 1.0), explore: explore.clamp(0.0, 1.0) })
    }
}

/// Incremental ridge-regularized linear ranker.
///
/// Targets are within-generation normalized ranks in `[0, 1]` (0 = best
/// fitness), so the model never needs to track the fitness scale —
/// only the ordering — and predictions double as imputation quantiles.
/// Observations accumulate into the normal equations `XᵀX w = Xᵀy`
/// with exponential decay per generation, and [`fit`](Self::fit) solves
/// the damped 8×8 system by Gaussian elimination with partial pivoting
/// on the coordinating thread. A singular system falls back to zero
/// weights (all predictions tie, broken by cell index) instead of
/// panicking.
#[derive(Debug, Clone)]
pub struct RankSurrogate {
    xtx: [[f64; NUM_FEATURES]; NUM_FEATURES],
    xty: [f64; NUM_FEATURES],
    weights: [f64; NUM_FEATURES],
    samples: u64,
    ridge: f64,
    decay: f64,
}

impl Default for RankSurrogate {
    fn default() -> Self {
        Self::new()
    }
}

impl RankSurrogate {
    /// A fresh, unfitted ranker (ridge 1e-3, per-generation decay 0.98).
    pub fn new() -> Self {
        RankSurrogate {
            xtx: [[0.0; NUM_FEATURES]; NUM_FEATURES],
            xty: [0.0; NUM_FEATURES],
            weights: [0.0; NUM_FEATURES],
            samples: 0,
            ridge: 1e-3,
            decay: 0.98,
        }
    }

    /// Observed (feature, target-rank) pairs so far (decay does not
    /// reduce this count — it gates warm-up, not memory).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Whether enough pairs were observed to trust predictions.
    pub fn ready(&self) -> bool {
        self.samples >= MIN_FIT_SAMPLES
    }

    /// The fitted weight vector (zeros until the first successful fit).
    pub fn weights(&self) -> &[f64; NUM_FEATURES] {
        &self.weights
    }

    /// Fold one observation into the normal equations. Non-finite
    /// feature values and targets are sanitized to neutral constants so
    /// degenerate generations can never poison the accumulators.
    pub fn observe(&mut self, features: &[f64; NUM_FEATURES], target: f64) {
        let mut x = [0.0f64; NUM_FEATURES];
        for (xi, &f) in x.iter_mut().zip(features.iter()) {
            *xi = if f.is_finite() { f } else { 0.0 };
        }
        let y = if target.is_finite() { target.clamp(0.0, 1.0) } else { 0.5 };
        for i in 0..NUM_FEATURES {
            for j in 0..NUM_FEATURES {
                self.xtx[i][j] += x[i] * x[j];
            }
            self.xty[i] += x[i] * y;
        }
        self.samples += 1;
    }

    /// Exponentially decay the accumulated equations — called once per
    /// generation so stale arms-race regimes fade from the fit.
    pub fn decay_generation(&mut self) {
        for row in self.xtx.iter_mut() {
            for v in row.iter_mut() {
                *v *= self.decay;
            }
        }
        for v in self.xty.iter_mut() {
            *v *= self.decay;
        }
    }

    /// Refit the weights from the accumulated equations. Never panics:
    /// a singular or non-finite system resets the weights to zero.
    #[allow(clippy::needless_range_loop)] // Gaussian elimination over one augmented array
    pub fn fit(&mut self) {
        // Augmented [A | b] with ridge damping on the diagonal.
        let mut a = [[0.0f64; NUM_FEATURES + 1]; NUM_FEATURES];
        for i in 0..NUM_FEATURES {
            for j in 0..NUM_FEATURES {
                a[i][j] = self.xtx[i][j];
            }
            a[i][i] += self.ridge * (self.samples.max(1) as f64);
            a[i][NUM_FEATURES] = self.xty[i];
        }
        for col in 0..NUM_FEATURES {
            let mut pivot = col;
            for r in col + 1..NUM_FEATURES {
                if a[r][col].abs() > a[pivot][col].abs() {
                    pivot = r;
                }
            }
            let p = a[pivot][col];
            if !p.is_finite() || p.abs() < 1e-12 {
                self.weights = [0.0; NUM_FEATURES];
                return;
            }
            a.swap(col, pivot);
            for r in col + 1..NUM_FEATURES {
                let factor = a[r][col] / a[col][col];
                for c in col..=NUM_FEATURES {
                    a[r][c] -= factor * a[col][c];
                }
            }
        }
        let mut w = [0.0f64; NUM_FEATURES];
        for i in (0..NUM_FEATURES).rev() {
            let mut acc = a[i][NUM_FEATURES];
            for j in i + 1..NUM_FEATURES {
                acc -= a[i][j] * w[j];
            }
            w[i] = acc / a[i][i];
        }
        if w.iter().all(|v| v.is_finite()) {
            self.weights = w;
        } else {
            self.weights = [0.0; NUM_FEATURES];
        }
    }

    /// Predicted rank for one cell (lower = better), sanitized to a
    /// finite value in `[0, 1]`-ish range so downstream ordering via
    /// `total_cmp` is always well-defined.
    pub fn predict(&self, features: &[f64; NUM_FEATURES]) -> f64 {
        let mut acc = 0.0;
        for (w, &f) in self.weights.iter().zip(features.iter()) {
            let f = if f.is_finite() { f } else { 0.0 };
            acc += w * f;
        }
        if acc.is_finite() {
            acc
        } else {
            0.5
        }
    }
}

/// Normalized average ranks of `values` in `[0, 1]` (0 = smallest).
/// NaNs rank worst, ties share the mean of their positions, and a
/// single value ranks `0.5`. Deterministic for any input.
pub fn normalized_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0.5];
    }
    // NaN sorts after +inf under this key, i.e. worst for minimization.
    let key = |v: f64| if v.is_nan() { f64::INFINITY } else { v };
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| key(values[a]).total_cmp(&key(values[b])).then(a.cmp(&b)));
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && key(values[order[j + 1]]) == key(values[order[i]]) {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg / (n - 1) as f64;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation between two same-length series. Returns
/// `0.0` for mismatched/short inputs or zero-variance ranks; never
/// panics and never returns NaN.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() || a.len() < 2 {
        return 0.0;
    }
    let ra = normalized_ranks(a);
    let rb = normalized_ranks(b);
    let n = ra.len() as f64;
    let ma = ra.iter().sum::<f64>() / n;
    let mb = rb.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in ra.iter().zip(rb.iter()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    let r = cov / (va.sqrt() * vb.sqrt());
    if r.is_finite() {
        r.clamp(-1.0, 1.0)
    } else {
        0.0
    }
}

/// Linear-interpolated quantile of an ascending-sorted slice; `q` is
/// clamped to `[0, 1]` and an empty slice yields `0.0`.
pub fn quantile_value(sorted: &[f64], q: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let q = if q.is_finite() { q.clamp(0.0, 1.0) } else { 0.5 };
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(n - 1);
            let t = pos - lo as f64;
            sorted[lo] * (1.0 - t) + sorted[hi] * t
        }
    }
}

/// The gate policy: which cells get an exact decode this generation.
///
/// Marks the `ceil(frac · n)` cells with the best (lowest) predicted
/// rank — ties broken by index via `total_cmp` — plus `ceil(explore · n)`
/// cells on a deterministic rotation derived from `round`, plus every
/// `pinned` cell. Consumes no randomness.
pub fn select_exact(
    preds: &[f64],
    frac: f64,
    explore: f64,
    pinned: &[bool],
    round: u64,
) -> Vec<bool> {
    let n = preds.len();
    let mut exact = vec![false; n];
    if n == 0 {
        return exact;
    }
    let frac = if frac.is_finite() { frac.clamp(0.0, 1.0) } else { 1.0 };
    let explore = if explore.is_finite() { explore.clamp(0.0, 1.0) } else { 0.0 };
    let k = (frac * n as f64).ceil() as usize;
    if k > 0 {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| preds[a].total_cmp(&preds[b]).then(a.cmp(&b)));
        for &i in order.iter().take(k.min(n)) {
            exact[i] = true;
        }
    }
    let e = if explore > 0.0 { (explore * n as f64).ceil() as usize } else { 0 };
    if e > 0 {
        // A prime stride decorrelates the rotation from population and
        // matrix sizes so exploration sweeps the whole matrix over time.
        let start = (round as usize).wrapping_mul(7919) % n;
        for step in 0..e.min(n) {
            exact[(start + step) % n] = true;
        }
    }
    for (flag, &pin) in exact.iter_mut().zip(pinned.iter()) {
        *flag |= pin;
    }
    exact
}

/// `k` probe indices evenly spaced over `0..n` (deduplicated, ascending).
pub fn probe_indices(n: usize, k: usize) -> Vec<usize> {
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let mut idx: Vec<usize> = (0..k).map(|i| i * n / k).collect();
    idx.dedup();
    idx
}

/// Assemble one cell's feature vector from its probe scores and the
/// column's pricing statistics.
///
/// `scores` are the row scorer's values on the column's probe bundles,
/// `probe_costs` the probes' priced costs, and `probe_greedy` the
/// cost-per-residual-coverage reference ordering the greedy decoder
/// would fall back to. The rank-agreement features (f1, f2) capture
/// *what kind* of ordering the scorer induces — the signal that decides
/// how a (scorer, pricing) pairing decodes — while f5–f7 locate the
/// pricing column's scale. Every output is finite.
pub fn cell_features(
    scores: &[f64],
    probe_costs: &[f64],
    probe_greedy: &[f64],
    lower_bound: f64,
    price_mean: f64,
    price_spread: f64,
) -> [f64; NUM_FEATURES] {
    let finite = scores.iter().filter(|s| s.is_finite()).count();
    let finite_frac = if scores.is_empty() { 0.0 } else { finite as f64 / scores.len() as f64 };
    let mut fin: Vec<f64> = scores.iter().copied().filter(|s| s.is_finite()).collect();
    fin.sort_by(f64::total_cmp);
    let median = match fin.len() {
        0 => 0.0,
        n if n % 2 == 1 => fin[n / 2],
        n => (fin[n / 2 - 1] + fin[n / 2]) / 2.0,
    };
    let squash = |v: f64| if v.is_finite() { v / (1.0 + v.abs()) } else { 0.0 };
    let log_pos = |v: f64| if v.is_finite() { v.max(0.0).ln_1p() } else { 0.0 };
    [
        1.0,
        spearman(scores, probe_costs),
        spearman(scores, probe_greedy),
        finite_frac,
        squash(median),
        log_pos(lower_bound),
        log_pos(price_mean),
        log_pos(price_spread),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_parses_and_round_trips() {
        assert_eq!("off".parse::<SurrogateGate>().unwrap(), SurrogateGate::Off);
        assert_eq!(
            "topk".parse::<SurrogateGate>().unwrap(),
            SurrogateGate::TopK { frac: DEFAULT_TOPK_FRAC, explore: DEFAULT_EXPLORE_FRAC }
        );
        assert_eq!(
            "topk:0.5".parse::<SurrogateGate>().unwrap(),
            SurrogateGate::TopK { frac: 0.5, explore: DEFAULT_EXPLORE_FRAC }
        );
        assert_eq!(
            "topk:0.5:0.1".parse::<SurrogateGate>().unwrap(),
            SurrogateGate::TopK { frac: 0.5, explore: 0.1 }
        );
        // Fractions clamp rather than error.
        assert_eq!(
            "topk:7:-1".parse::<SurrogateGate>().unwrap(),
            SurrogateGate::TopK { frac: 1.0, explore: 0.0 }
        );
        assert!("nope".parse::<SurrogateGate>().is_err());
        assert!("topk:x".parse::<SurrogateGate>().is_err());
        assert!("topk:0.5:0.1:9".parse::<SurrogateGate>().is_err());
        assert_eq!(SurrogateGate::Off.as_str(), "off");
        assert_eq!(SurrogateGate::top_k().as_str(), "topk");
    }

    #[test]
    fn ranks_handle_ties_and_nans() {
        assert!(normalized_ranks(&[]).is_empty());
        assert_eq!(normalized_ranks(&[3.0]), vec![0.5]);
        let r = normalized_ranks(&[1.0, 2.0, 3.0]);
        assert_eq!(r, vec![0.0, 0.5, 1.0]);
        // Ties share the mean rank.
        let r = normalized_ranks(&[1.0, 1.0, 2.0]);
        assert_eq!(r[0], r[1]);
        assert!(r[2] > r[0]);
        // NaNs rank worst.
        let r = normalized_ranks(&[f64::NAN, 0.0, 5.0]);
        assert_eq!(r[0], 1.0);
        assert_eq!(r[1], 0.0);
    }

    #[test]
    fn spearman_matches_monotone_expectations() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &up) - 1.0).abs() < 1e-12);
        assert!((spearman(&a, &down) + 1.0).abs() < 1e-12);
        assert_eq!(spearman(&a, &[5.0, 5.0, 5.0, 5.0]), 0.0);
        assert_eq!(spearman(&a, &a[..2]), 0.0);
        assert_eq!(spearman(&[], &[]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        assert_eq!(quantile_value(&[], 0.5), 0.0);
        assert_eq!(quantile_value(&[7.0], 0.9), 7.0);
        let s = [0.0, 10.0];
        assert_eq!(quantile_value(&s, 0.0), 0.0);
        assert_eq!(quantile_value(&s, 1.0), 10.0);
        assert_eq!(quantile_value(&s, 0.25), 2.5);
        assert_eq!(quantile_value(&s, f64::NAN), 5.0);
    }

    #[test]
    fn surrogate_learns_a_linear_ranking() {
        // Target rank is a noiseless linear function of one feature: the
        // fitted model must order fresh points correctly.
        let mut s = RankSurrogate::new();
        for i in 0..40 {
            let x = i as f64 / 39.0;
            let mut f = [0.0; NUM_FEATURES];
            f[0] = 1.0;
            f[1] = x;
            s.observe(&f, x);
        }
        assert!(s.ready());
        s.fit();
        let mut lo = [0.0; NUM_FEATURES];
        lo[0] = 1.0;
        lo[1] = 0.1;
        let mut hi = [0.0; NUM_FEATURES];
        hi[0] = 1.0;
        hi[1] = 0.9;
        assert!(s.predict(&lo) < s.predict(&hi));
    }

    #[test]
    fn surrogate_is_deterministic_and_nan_safe() {
        let build = || {
            let mut s = RankSurrogate::new();
            for i in 0..20 {
                let mut f = [f64::NAN; NUM_FEATURES];
                f[1] = i as f64;
                f[2] = f64::INFINITY;
                s.observe(&f, if i % 3 == 0 { f64::NAN } else { i as f64 / 19.0 });
                s.decay_generation();
                s.fit();
            }
            s
        };
        let a = build();
        let b = build();
        assert_eq!(a.weights().map(f64::to_bits), b.weights().map(f64::to_bits));
        let probe = [0.5; NUM_FEATURES];
        assert!(a.predict(&probe).is_finite());
    }

    #[test]
    fn singular_fit_falls_back_to_zero_weights() {
        let mut s = RankSurrogate::new();
        // No observations at all: XᵀX is zero, ridge keeps it solvable
        // and the solution is exactly zero.
        s.fit();
        assert_eq!(s.weights(), &[0.0; NUM_FEATURES]);
        assert_eq!(s.predict(&[1.0; NUM_FEATURES]), 0.0);
    }

    #[test]
    fn select_exact_honors_frac_explore_and_pins() {
        let preds = [0.9, 0.1, 0.5, 0.3, 0.7];
        let none = [false; 5];
        let mask = select_exact(&preds, 0.4, 0.0, &none, 0);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 2);
        assert!(mask[1] && mask[3]);
        // frac 0 + explore 0 → only pins.
        let mut pins = [false; 5];
        pins[4] = true;
        let mask = select_exact(&preds, 0.0, 0.0, &pins, 3);
        assert_eq!(mask, [false, false, false, false, true]);
        // frac 1 → everything.
        let mask = select_exact(&preds, 1.0, 0.0, &none, 7);
        assert!(mask.iter().all(|&m| m));
        // Exploration rotates deterministically and adds cells.
        let m0 = select_exact(&preds, 0.0, 0.2, &none, 0);
        let m1 = select_exact(&preds, 0.0, 0.2, &none, 1);
        assert_eq!(m0.iter().filter(|&&m| m).count(), 1);
        assert_eq!(m1.iter().filter(|&&m| m).count(), 1);
        assert_ne!(m0, m1);
        assert!(select_exact(&[], 0.5, 0.5, &[], 0).is_empty());
    }

    #[test]
    fn probe_indices_are_spread_and_bounded() {
        assert!(probe_indices(0, 8).is_empty());
        assert!(probe_indices(10, 0).is_empty());
        assert_eq!(probe_indices(4, 8), vec![0, 1, 2, 3]);
        let idx = probe_indices(100, 8);
        assert_eq!(idx.len(), 8);
        assert_eq!(idx[0], 0);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(*idx.last().unwrap() < 100);
    }

    #[test]
    fn cell_features_are_always_finite() {
        let degenerate = cell_features(
            &[f64::NAN, f64::INFINITY, f64::NEG_INFINITY],
            &[1.0, 2.0, 3.0],
            &[3.0, 2.0, 1.0],
            f64::NAN,
            f64::INFINITY,
            -5.0,
        );
        assert!(degenerate.iter().all(|f| f.is_finite()));
        let empty = cell_features(&[], &[], &[], 10.0, 4.0, 2.0);
        assert!(empty.iter().all(|f| f.is_finite()));
        assert_eq!(empty[0], 1.0);
        let sane = cell_features(
            &[1.0, 2.0, 3.0, 4.0],
            &[1.0, 2.0, 3.0, 4.0],
            &[4.0, 3.0, 2.0, 1.0],
            100.0,
            10.0,
            3.0,
        );
        assert!((sane[1] - 1.0).abs() < 1e-12);
        assert!((sane[2] + 1.0).abs() < 1e-12);
        assert_eq!(sane[3], 1.0);
    }
}
