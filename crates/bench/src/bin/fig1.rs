//! Reproduce **Fig. 1 / Program 3** — the Mersha–Dempe linear bi-level
//! example with a *discontinuous inducible region*: the upper-level
//! constraints exclude the rational reactions for 3 < x < 8, and a
//! leader who trusts a non-rational lower-level answer (y = 8 at x = 6)
//! overestimates his payoff and lands outside the feasible set.
//!
//! ```text
//! cargo run -p bico-bench --release --bin fig1
//! ```

use bico_core::{program3, TieBreak};

fn main() {
    let p = program3();
    println!("x, rational_y, ul_feasible, F(x, rational_y)");
    let steps = 40;
    for i in 0..=steps {
        let x = 10.0 * i as f64 / steps as f64;
        match p.rational_reaction(&[x], TieBreak::Optimistic) {
            Some(r) => {
                let feasible = p.ul_feasible(&[x], &r.y, 1e-7);
                println!(
                    "{x:.2}, {:.3}, {}, {:.3}",
                    r.y[0],
                    feasible,
                    p.ul_objective(&[x], &r.y)
                );
            }
            None => println!("{x:.2}, LL-infeasible, -, -"),
        }
    }
    println!();

    let r6 = p.rational_reaction(&[6.0], TieBreak::Optimistic).unwrap();
    println!(
        "At x = 6 the rational reaction is y = {:.2} (paper: 12), UL-feasible: {}",
        r6.y[0],
        p.ul_feasible(&[6.0], &r6.y, 1e-7)
    );
    println!(
        "A naive lower-level answer y = 8 at x = 6 WOULD be UL-feasible ({}), \
         promising F = {:.1} — but it is not rational, so the leader never gets it.",
        p.ul_feasible(&[6.0], &[8.0], 1e-7),
        p.ul_objective(&[6.0], &[8.0])
    );
    let (x, y, f) = p.solve_grid(0.0, 10.0, 2000, TieBreak::Optimistic).unwrap();
    println!(
        "Bi-level optimum over the inducible region: x = {x:.3}, y = {:.3}, F = {f:.3}",
        y[0]
    );
    println!("(analytic optimum: x = 8, y = 6, F = -20)");
}
