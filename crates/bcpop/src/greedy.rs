//! The greedy covering heuristic — the phenotype CARBON evolves.
//!
//! §IV.B: *"According to this scoring function, the CSC adds each bundle
//! inside his basket until all service requirements are satisfied."*
//! The scoring function is pluggable (a [`Scorer`]); a redundancy-
//! elimination pass then drops bundles that are no longer needed, a
//! standard strengthening for greedy covering.

use crate::instance::BcpopInstance;
use crate::relaxation::Relaxation;
use crate::scoring::{bundle_features, Scorer};

/// Result of one greedy pass.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverOutcome {
    /// Selection indicator per bundle.
    pub chosen: Vec<bool>,
    /// Total cost of the selection (`A(x)` in Eq. 1).
    pub cost: f64,
    /// `true` iff every requirement is covered.
    pub feasible: bool,
    /// Number of greedy iterations performed.
    pub steps: usize,
}

/// Run the scored greedy: repeatedly buy the lowest-scoring candidate
/// bundle with positive residual coverage until all requirements are met
/// (or no candidate can make progress — impossible on a validated
/// instance, but reported as `feasible: false` defensively).
///
/// `relax` supplies the LP terminals (`d_k`, `x̄_j`); pass `None` to run
/// without them (the `ablation_terminals` configuration).
///
/// ```
/// use bico_bcpop::{generate, greedy_cover, CostPerCoverageScorer, GeneratorConfig};
///
/// let inst = generate(&GeneratorConfig::paper_class(100, 5), 3);
/// let costs = inst.costs_for(&vec![25.0; inst.num_own()]);
/// let out = greedy_cover(&inst, &costs, &mut CostPerCoverageScorer, None);
/// assert!(out.feasible);
/// assert!(inst.is_covering(&out.chosen));
/// ```
#[allow(clippy::needless_range_loop)] // several parallel arrays per index
pub fn greedy_cover<S: Scorer>(
    inst: &BcpopInstance,
    costs: &[f64],
    scorer: &mut S,
    relax: Option<&Relaxation>,
) -> CoverOutcome {
    let m = inst.num_bundles();
    let n = inst.num_services();
    debug_assert_eq!(costs.len(), m);

    let mut residual: Vec<i64> = inst.requirements().iter().map(|&v| v as i64).collect();
    let mut chosen = vec![false; m];
    let mut steps = 0usize;

    while residual.iter().any(|&r| r > 0) {
        let mut best: Option<(usize, f64)> = None;
        for j in 0..m {
            if chosen[j] {
                continue;
            }
            let feats = bundle_features(inst, costs, &residual, relax, j);
            if feats.residual_coverage <= 0.0 {
                continue; // useless bundle at this state
            }
            let s = scorer.score(&feats);
            let better = match best {
                None => true,
                // total_cmp keeps the ordering total even for NaN scores.
                Some((_, bs)) => s.total_cmp(&bs) == std::cmp::Ordering::Less,
            };
            if better {
                best = Some((j, s));
            }
        }
        let Some((j, _)) = best else {
            // No bundle can reduce any residual requirement.
            return CoverOutcome {
                cost: selection_cost(costs, &chosen),
                chosen,
                feasible: false,
                steps,
            };
        };
        chosen[j] = true;
        for k in 0..n {
            residual[k] -= inst.coverage(j, k) as i64;
        }
        steps += 1;
    }

    eliminate_redundancy(inst, costs, &mut chosen);
    CoverOutcome { cost: selection_cost(costs, &chosen), chosen, feasible: true, steps }
}

/// Drop selected bundles, most expensive first, whenever removal keeps
/// the selection covering.
#[allow(clippy::needless_range_loop)]
fn eliminate_redundancy(inst: &BcpopInstance, costs: &[f64], chosen: &mut [bool]) {
    let n = inst.num_services();
    // Current slack per service: coverage − requirement (≥ 0 on entry).
    let mut slack: Vec<i64> = vec![0; n];
    for k in 0..n {
        let covered: i64 = (0..inst.num_bundles())
            .filter(|&j| chosen[j])
            .map(|j| inst.coverage(j, k) as i64)
            .sum();
        slack[k] = covered - inst.requirement(k) as i64;
    }
    let mut selected: Vec<usize> = (0..inst.num_bundles()).filter(|&j| chosen[j]).collect();
    selected.sort_by(|&a, &b| costs[b].total_cmp(&costs[a])); // expensive first
    for j in selected {
        let removable = (0..n).all(|k| slack[k] >= inst.coverage(j, k) as i64);
        if removable {
            chosen[j] = false;
            for k in 0..n {
                slack[k] -= inst.coverage(j, k) as i64;
            }
        }
    }
}

fn selection_cost(costs: &[f64], chosen: &[bool]) -> f64 {
    chosen.iter().zip(costs).filter(|(&c, _)| c).map(|(_, &v)| v).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::test_fixtures::tiny;
    use crate::scoring::{CostPerCoverageScorer, CostScorer};
    use crate::{generate, GeneratorConfig, RelaxationSolver};

    #[test]
    fn tiny_greedy_covers() {
        let inst = tiny();
        let costs = inst.costs_for(&[1.5, 2.5]);
        let out = greedy_cover(&inst, &costs, &mut CostPerCoverageScorer, None);
        assert!(out.feasible);
        assert!(inst.is_covering(&out.chosen));
        // Optimal here: own bundles (1.5 + 2.5 = 4.0).
        assert!((out.cost - 4.0).abs() < 1e-9);
    }

    #[test]
    fn cheap_scorer_picks_cheapest_usable() {
        let inst = tiny();
        // Make own bundles free: cost scorer buys both first.
        let costs = inst.costs_for(&[0.0, 0.0]);
        let out = greedy_cover(&inst, &costs, &mut CostScorer, None);
        assert!(out.feasible);
        assert_eq!(out.cost, 0.0);
        assert!(out.chosen[0] && out.chosen[1]);
    }

    #[test]
    fn redundancy_elimination_removes_useless_purchases() {
        // Force a wasteful first pick, then check it gets eliminated:
        // a scorer that loves bundle 2 (covers (1,1), cost 4) first, but
        // after bundles 0 and 1 are bought, bundle 2 is redundant.
        struct Weird(usize);
        impl Scorer for Weird {
            fn score(&mut self, f: &BundleFeatures) -> f64 {
                self.0 += 1;
                if self.0 <= 4 {
                    // First greedy step: prefer high total coverage (bundle 2/3).
                    -f.total_coverage * 10.0 - f.cost
                } else {
                    f.cost
                }
            }
        }
        use crate::scoring::BundleFeatures;
        let inst = tiny();
        let costs = inst.costs_for(&[0.5, 0.5]);
        let out = greedy_cover(&inst, &costs, &mut Weird(0), None);
        assert!(out.feasible);
        assert!(inst.is_covering(&out.chosen));
        // The expensive competitor bundle must have been eliminated.
        assert!(!out.chosen[2] || !out.chosen[3] || out.cost <= 4.0);
    }

    #[test]
    fn greedy_on_generated_instances_is_feasible_and_above_lp() {
        for seed in 0..5 {
            let inst = generate(&GeneratorConfig::paper_class(100, 10), seed);
            let prices = vec![30.0; inst.num_own()];
            let costs = inst.costs_for(&prices);
            let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
            let out = greedy_cover(&inst, &costs, &mut CostPerCoverageScorer, Some(&relax));
            assert!(out.feasible, "greedy failed on seed {seed}");
            assert!(inst.is_covering(&out.chosen));
            assert!(
                out.cost >= relax.lower_bound - 1e-6,
                "greedy cost {} below LP bound {}",
                out.cost,
                relax.lower_bound
            );
        }
    }

    #[test]
    fn steps_bounded_by_bundles() {
        let inst = generate(&GeneratorConfig::paper_class(100, 5), 1);
        let costs = inst.costs_for(&vec![10.0; inst.num_own()]);
        let out = greedy_cover(&inst, &costs, &mut CostPerCoverageScorer, None);
        assert!(out.steps <= inst.num_bundles());
    }

    #[test]
    fn nan_scores_do_not_poison_selection() {
        struct NanScorer;
        impl Scorer for NanScorer {
            fn score(&mut self, _f: &crate::scoring::BundleFeatures) -> f64 {
                f64::NAN
            }
        }
        let inst = tiny();
        let costs = inst.costs_for(&[1.0, 1.0]);
        let out = greedy_cover(&inst, &costs, &mut NanScorer, None);
        // total_cmp gives NaN a fixed order; greedy still terminates
        // feasibly.
        assert!(out.feasible);
        assert!(inst.is_covering(&out.chosen));
    }
}
