//! Metrics sink: lock-free counters plus wall-clock timers, folded into
//! a final [`RunMetrics`] report.
//!
//! Counters are atomic and exact under any interleaving — attach one
//! sink to a whole batch of parallel runs and the totals still add up.
//! The wall-clock parts (per-phase durations, generation latency) are
//! keyed off `PhaseChange`/`GenerationStart`/`GenerationEnd` pairs and
//! are only meaningful when a single run feeds the sink at a time; with
//! interleaved runs the counters remain exact while the timings blur.

use crate::event::{Event, Level};
use crate::hist::Histogram;
use crate::json;
use crate::observer::RunObserver;
use crate::stats::Summary;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Wall-clock total for one named phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Phase name, as emitted by `PhaseChange`.
    pub phase: String,
    /// Total seconds spent in the phase (summed over revisits).
    pub seconds: f64,
}

struct TimedState {
    current_phase: Option<(String, Instant)>,
    phase_totals: Vec<(String, Duration)>, // insertion-ordered
    generation_start: Option<Instant>,
    generation_seconds: Summary,
    /// Per-solve latency of lower-level relaxation batches.
    ll_solve_seconds: Histogram,
    /// Per-evaluation latency of GP-scored (decode-pass) batches.
    decode_pass_seconds: Histogram,
    /// Per-miss latency of GP compilations.
    gp_compile_seconds: Histogram,
    /// Simplex pivots per relaxation solve.
    simplex_pivots_per_solve: Histogram,
    /// GP tree nodes walked per fitness evaluation.
    gp_nodes_per_eval: Histogram,
    /// Sum of finite surrogate rank correlations observed.
    surrogate_corr_sum: f64,
    /// Number of finite surrogate rank correlations observed.
    surrogate_corr_count: u64,
}

impl Default for TimedState {
    fn default() -> Self {
        TimedState {
            current_phase: None,
            phase_totals: Vec::new(),
            generation_start: None,
            generation_seconds: Summary::default(),
            ll_solve_seconds: Histogram::seconds(),
            decode_pass_seconds: Histogram::seconds(),
            gp_compile_seconds: Histogram::seconds(),
            simplex_pivots_per_solve: Histogram::counts(),
            gp_nodes_per_eval: Histogram::counts(),
            surrogate_corr_sum: 0.0,
            surrogate_corr_count: 0,
        }
    }
}

impl TimedState {
    fn accrue_phase(&mut self, now: Instant) {
        if let Some((name, since)) = self.current_phase.take() {
            let elapsed = now.duration_since(since);
            match self.phase_totals.iter_mut().find(|(n, _)| *n == name) {
                Some((_, total)) => *total += elapsed,
                None => self.phase_totals.push((name, elapsed)),
            }
        }
    }
}

/// An observer aggregating counters and timers across every event it
/// sees. Call [`MetricsSink::report`] when the run(s) finish.
#[derive(Default)]
pub struct MetricsSink {
    runs: AtomicU64,
    generations: AtomicU64,
    ul_evaluations: AtomicU64,
    ll_evaluations: AtomicU64,
    gp_node_evals: AtomicU64,
    ll_solves: AtomicU64,
    simplex_pivots: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    cache_entries: AtomicU64,
    compile_cache_hits: AtomicU64,
    compile_cache_misses: AtomicU64,
    compile_cache_evictions: AtomicU64,
    compile_cache_entries: AtomicU64,
    decode_cache_hits: AtomicU64,
    decode_cache_misses: AtomicU64,
    decode_cache_evictions: AtomicU64,
    decode_cache_entries: AtomicU64,
    surrogate_cells: AtomicU64,
    surrogate_exact: AtomicU64,
    surrogate_skipped: AtomicU64,
    archive_updates: AtomicU64,
    timed: Mutex<TimedState>,
    created: Option<Instant>,
}

impl MetricsSink {
    /// Fresh sink; the wall clock starts now.
    pub fn new() -> Self {
        MetricsSink { created: Some(Instant::now()), ..Default::default() }
    }

    /// Fold the accumulated state into a report. The sink keeps
    /// accumulating afterwards (the report is a snapshot).
    pub fn report(&self) -> RunMetrics {
        let timed = self.timed.lock().expect("metrics mutex poisoned");
        let generation_seconds = timed.generation_seconds.clone();
        let ll_solve_seconds = timed.ll_solve_seconds.clone();
        let decode_pass_seconds = timed.decode_pass_seconds.clone();
        let gp_compile_seconds = timed.gp_compile_seconds.clone();
        let simplex_pivots_per_solve = timed.simplex_pivots_per_solve.clone();
        let gp_nodes_per_eval = timed.gp_nodes_per_eval.clone();
        let surrogate_rank_corr_mean = if timed.surrogate_corr_count > 0 {
            timed.surrogate_corr_sum / timed.surrogate_corr_count as f64
        } else {
            f64::NAN
        };
        let phases: Vec<PhaseTiming> = timed
            .phase_totals
            .iter()
            .map(|(phase, total)| PhaseTiming {
                phase: phase.clone(),
                seconds: total.as_secs_f64(),
            })
            .collect();
        drop(timed);
        let ul = self.ul_evaluations.load(Ordering::Relaxed);
        let ll = self.ll_evaluations.load(Ordering::Relaxed);
        RunMetrics {
            runs: self.runs.load(Ordering::Relaxed),
            generations: self.generations.load(Ordering::Relaxed),
            evaluations: ul + ll,
            ul_evaluations: ul,
            ll_evaluations: ll,
            gp_node_evals: self.gp_node_evals.load(Ordering::Relaxed),
            ll_solves: self.ll_solves.load(Ordering::Relaxed),
            simplex_pivots: self.simplex_pivots.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            cache_entries: self.cache_entries.load(Ordering::Relaxed),
            compile_cache_hits: self.compile_cache_hits.load(Ordering::Relaxed),
            compile_cache_misses: self.compile_cache_misses.load(Ordering::Relaxed),
            compile_cache_evictions: self.compile_cache_evictions.load(Ordering::Relaxed),
            compile_cache_entries: self.compile_cache_entries.load(Ordering::Relaxed),
            decode_cache_hits: self.decode_cache_hits.load(Ordering::Relaxed),
            decode_cache_misses: self.decode_cache_misses.load(Ordering::Relaxed),
            decode_cache_evictions: self.decode_cache_evictions.load(Ordering::Relaxed),
            decode_cache_entries: self.decode_cache_entries.load(Ordering::Relaxed),
            surrogate_cells: self.surrogate_cells.load(Ordering::Relaxed),
            surrogate_exact: self.surrogate_exact.load(Ordering::Relaxed),
            surrogate_skipped: self.surrogate_skipped.load(Ordering::Relaxed),
            surrogate_rank_corr_mean,
            archive_updates: self.archive_updates.load(Ordering::Relaxed),
            wall_seconds: self.created.map_or(0.0, |c| c.elapsed().as_secs_f64()),
            phases,
            generation_seconds,
            ll_solve_seconds,
            decode_pass_seconds,
            gp_compile_seconds,
            simplex_pivots_per_solve,
            gp_nodes_per_eval,
        }
    }
}

impl RunObserver for MetricsSink {
    fn observe(&self, event: &Event<'_>) {
        match *event {
            Event::RunStart { .. } => {
                self.runs.fetch_add(1, Ordering::Relaxed);
            }
            Event::PhaseChange { phase } => {
                let now = Instant::now();
                let mut timed = self.timed.lock().expect("metrics mutex poisoned");
                timed.accrue_phase(now);
                timed.current_phase = Some((phase.to_string(), now));
            }
            Event::GenerationStart { .. } => {
                let mut timed = self.timed.lock().expect("metrics mutex poisoned");
                timed.generation_start = Some(Instant::now());
            }
            Event::Evaluation { level, count, gp_nodes, micros } => {
                match level {
                    Level::Upper => &self.ul_evaluations,
                    Level::Lower => &self.ll_evaluations,
                }
                .fetch_add(count, Ordering::Relaxed);
                self.gp_node_evals.fetch_add(gp_nodes, Ordering::Relaxed);
                // GP-scored batches are decode passes: the heuristic is
                // evaluated to drive a greedy decode of the schedule.
                if gp_nodes > 0 && count > 0 {
                    let mut timed = self.timed.lock().expect("metrics mutex poisoned");
                    if micros > 0 {
                        let per_eval = micros as f64 / 1e6 / count as f64;
                        timed.decode_pass_seconds.record_n(per_eval, count);
                    }
                    timed.gp_nodes_per_eval.record_n(gp_nodes as f64 / count as f64, count);
                }
            }
            Event::LowerLevelSolve { solves, pivots, micros } => {
                self.ll_solves.fetch_add(solves, Ordering::Relaxed);
                self.simplex_pivots.fetch_add(pivots, Ordering::Relaxed);
                if solves > 0 {
                    let mut timed = self.timed.lock().expect("metrics mutex poisoned");
                    if micros > 0 {
                        let per_solve = micros as f64 / 1e6 / solves as f64;
                        timed.ll_solve_seconds.record_n(per_solve, solves);
                    }
                    timed
                        .simplex_pivots_per_solve
                        .record_n(pivots as f64 / solves as f64, solves);
                }
            }
            Event::CacheProbe { hits, misses, evictions, entries } => {
                self.cache_hits.fetch_add(hits, Ordering::Relaxed);
                self.cache_misses.fetch_add(misses, Ordering::Relaxed);
                self.cache_evictions.fetch_add(evictions, Ordering::Relaxed);
                // `entries` is a gauge: keep the last observed residency.
                self.cache_entries.store(entries, Ordering::Relaxed);
            }
            Event::CompileCacheProbe { hits, misses, evictions, entries, compile_micros } => {
                self.compile_cache_hits.fetch_add(hits, Ordering::Relaxed);
                self.compile_cache_misses.fetch_add(misses, Ordering::Relaxed);
                self.compile_cache_evictions.fetch_add(evictions, Ordering::Relaxed);
                self.compile_cache_entries.store(entries, Ordering::Relaxed);
                if misses > 0 && compile_micros > 0 {
                    let mut timed = self.timed.lock().expect("metrics mutex poisoned");
                    let per_miss = compile_micros as f64 / 1e6 / misses as f64;
                    timed.gp_compile_seconds.record_n(per_miss, misses);
                }
            }
            Event::DecodeCacheProbe { hits, misses, evictions, entries } => {
                self.decode_cache_hits.fetch_add(hits, Ordering::Relaxed);
                self.decode_cache_misses.fetch_add(misses, Ordering::Relaxed);
                self.decode_cache_evictions.fetch_add(evictions, Ordering::Relaxed);
                self.decode_cache_entries.store(entries, Ordering::Relaxed);
            }
            Event::SurrogateProbe { cells, exact, skipped, rank_corr } => {
                self.surrogate_cells.fetch_add(cells, Ordering::Relaxed);
                self.surrogate_exact.fetch_add(exact, Ordering::Relaxed);
                self.surrogate_skipped.fetch_add(skipped, Ordering::Relaxed);
                if rank_corr.is_finite() {
                    let mut timed = self.timed.lock().expect("metrics mutex poisoned");
                    timed.surrogate_corr_sum += rank_corr;
                    timed.surrogate_corr_count += 1;
                }
            }
            // Objective pairs feed the trace analyzer, not the counters.
            Event::ObjectivePair { .. } => {}
            Event::ArchiveUpdate { .. } => {
                self.archive_updates.fetch_add(1, Ordering::Relaxed);
            }
            Event::GenerationEnd { .. } => {
                self.generations.fetch_add(1, Ordering::Relaxed);
                let mut timed = self.timed.lock().expect("metrics mutex poisoned");
                if let Some(start) = timed.generation_start.take() {
                    let seconds = start.elapsed().as_secs_f64();
                    timed.generation_seconds.push(seconds);
                }
            }
            Event::RunComplete { .. } => {
                let now = Instant::now();
                let mut timed = self.timed.lock().expect("metrics mutex poisoned");
                timed.accrue_phase(now);
                timed.generation_start = None;
            }
        }
    }
}

/// Snapshot of a [`MetricsSink`] — what `--metrics-out` serializes.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Solver runs observed (`RunStart` count).
    pub runs: u64,
    /// Generations completed across all runs.
    pub generations: u64,
    /// Total fitness evaluations, both levels.
    pub evaluations: u64,
    /// Upper-level fitness evaluations.
    pub ul_evaluations: u64,
    /// Lower-level fitness evaluations.
    pub ll_evaluations: u64,
    /// GP tree nodes evaluated.
    pub gp_node_evals: u64,
    /// Lower-level relaxation LP solves.
    pub ll_solves: u64,
    /// Simplex pivots across those solves.
    pub simplex_pivots: u64,
    /// Lower-level solve-cache hits.
    pub cache_hits: u64,
    /// Lower-level solve-cache misses.
    pub cache_misses: u64,
    /// Lower-level solve-cache evictions.
    pub cache_evictions: u64,
    /// Last observed solve-cache residency (a gauge).
    pub cache_entries: u64,
    /// GP compile-cache hits.
    pub compile_cache_hits: u64,
    /// GP compile-cache misses (fresh compilations).
    pub compile_cache_misses: u64,
    /// GP compile-cache evictions.
    pub compile_cache_evictions: u64,
    /// Last observed compile-cache residency (a gauge).
    pub compile_cache_entries: u64,
    /// Decode-cache hits (unique evaluation-matrix cells recalled).
    pub decode_cache_hits: u64,
    /// Decode-cache misses (fresh greedy decodes of unique cells).
    pub decode_cache_misses: u64,
    /// Decode-cache evictions.
    pub decode_cache_evictions: u64,
    /// Last observed decode-cache residency (a gauge).
    pub decode_cache_entries: u64,
    /// Evaluation-matrix cells screened by the surrogate gate.
    pub surrogate_cells: u64,
    /// Screened cells decoded exactly (top-k + exploration + pinned).
    pub surrogate_exact: u64,
    /// Screened cells imputed from surrogate rank instead of decoded.
    pub surrogate_skipped: u64,
    /// Mean Spearman rank correlation of surrogate predictions vs
    /// realized outcomes over generations where it was measurable
    /// (NaN when the gate never reported a finite correlation).
    pub surrogate_rank_corr_mean: f64,
    /// Archive-update events.
    pub archive_updates: u64,
    /// Seconds since the sink was created.
    pub wall_seconds: f64,
    /// Per-phase wall-clock totals, in first-seen order.
    pub phases: Vec<PhaseTiming>,
    /// Distribution of per-generation latencies (seconds).
    pub generation_seconds: Summary,
    /// Per-solve latency of lower-level relaxation batches (seconds).
    pub ll_solve_seconds: Histogram,
    /// Per-evaluation latency of GP-scored decode passes (seconds).
    pub decode_pass_seconds: Histogram,
    /// Per-miss latency of GP compilations (seconds).
    pub gp_compile_seconds: Histogram,
    /// Simplex pivots per relaxation solve.
    pub simplex_pivots_per_solve: Histogram,
    /// GP tree nodes walked per fitness evaluation.
    pub gp_nodes_per_eval: Histogram,
}

impl RunMetrics {
    /// Serialize as a pretty-printed JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        let mut field = |key: &str, tail: &str| {
            out.push_str("  \"");
            out.push_str(key);
            out.push_str("\": ");
            out.push_str(tail);
            out.push_str(",\n");
        };
        field("runs", &self.runs.to_string());
        field("generations", &self.generations.to_string());
        field("evaluations", &self.evaluations.to_string());
        field("ul_evaluations", &self.ul_evaluations.to_string());
        field("ll_evaluations", &self.ll_evaluations.to_string());
        field("gp_node_evals", &self.gp_node_evals.to_string());
        field("ll_solves", &self.ll_solves.to_string());
        field("simplex_pivots", &self.simplex_pivots.to_string());
        field("cache_hits", &self.cache_hits.to_string());
        field("cache_misses", &self.cache_misses.to_string());
        field("cache_evictions", &self.cache_evictions.to_string());
        field("cache_entries", &self.cache_entries.to_string());
        field("compile_cache_hits", &self.compile_cache_hits.to_string());
        field("compile_cache_misses", &self.compile_cache_misses.to_string());
        field("compile_cache_evictions", &self.compile_cache_evictions.to_string());
        field("compile_cache_entries", &self.compile_cache_entries.to_string());
        field("decode_cache_hits", &self.decode_cache_hits.to_string());
        field("decode_cache_misses", &self.decode_cache_misses.to_string());
        field("decode_cache_evictions", &self.decode_cache_evictions.to_string());
        field("decode_cache_entries", &self.decode_cache_entries.to_string());
        field("surrogate_cells", &self.surrogate_cells.to_string());
        field("surrogate_exact", &self.surrogate_exact.to_string());
        field("surrogate_skipped", &self.surrogate_skipped.to_string());
        let mut corr = String::new();
        json::push_f64(&mut corr, self.surrogate_rank_corr_mean);
        field("surrogate_rank_corr_mean", &corr);
        field("archive_updates", &self.archive_updates.to_string());
        let mut wall = String::new();
        json::push_f64(&mut wall, self.wall_seconds);
        field("wall_seconds", &wall);

        out.push_str("  \"phases\": [");
        for (i, timing) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"phase\": ");
            json::push_string(&mut out, &timing.phase);
            out.push_str(", \"seconds\": ");
            json::push_f64(&mut out, timing.seconds);
            out.push('}');
        }
        if !self.phases.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");

        let g = &self.generation_seconds;
        out.push_str("  \"generation_seconds\": {");
        let stats = [
            ("count", g.count() as f64),
            ("mean", g.mean()),
            ("median", g.median()),
            ("p90", g.percentile(90.0)),
            ("min", g.min()),
            ("max", g.max()),
        ];
        for (i, (key, value)) in stats.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(key);
            out.push_str("\": ");
            json::push_f64(&mut out, *value);
        }
        out.push_str("},\n");

        out.push_str("  \"histograms\": {");
        for (i, (key, hist)) in self.histograms().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(key);
            out.push_str("\": ");
            hist.push_json_summary(&mut out);
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// The latency/size histograms by stable report name, in render
    /// order (shared by the JSON report and the Prometheus exposition).
    pub fn histograms(&self) -> [(&'static str, &Histogram); 5] {
        [
            ("ll_solve_seconds", &self.ll_solve_seconds),
            ("decode_pass_seconds", &self.decode_pass_seconds),
            ("gp_compile_seconds", &self.gp_compile_seconds),
            ("simplex_pivots_per_solve", &self.simplex_pivots_per_solve),
            ("gp_nodes_per_eval", &self.gp_nodes_per_eval),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    #[test]
    fn counters_aggregate() {
        let sink = MetricsSink::new();
        sink.observe(&Event::RunStart { algo: "carbon", seed: 1 });
        sink.observe(&Event::Evaluation {
            level: Level::Upper,
            count: 10,
            gp_nodes: 0,
            micros: 0,
        });
        sink.observe(&Event::Evaluation {
            level: Level::Lower,
            count: 20,
            gp_nodes: 500,
            micros: 400,
        });
        sink.observe(&Event::LowerLevelSolve { solves: 10, pivots: 170, micros: 50 });
        sink.observe(&Event::ArchiveUpdate { level: Level::Upper, size: 5, best: 1.0 });
        sink.observe(&Event::CacheProbe { hits: 2, misses: 8, evictions: 1, entries: 7 });
        sink.observe(&Event::CompileCacheProbe {
            hits: 40,
            misses: 3,
            evictions: 0,
            entries: 3,
            compile_micros: 90,
        });
        sink.observe(&Event::DecodeCacheProbe {
            hits: 12,
            misses: 4,
            evictions: 2,
            entries: 14,
        });
        sink.observe(&Event::SurrogateProbe {
            cells: 40,
            exact: 16,
            skipped: 24,
            rank_corr: 0.5,
        });
        sink.observe(&Event::SurrogateProbe {
            cells: 40,
            exact: 12,
            skipped: 28,
            rank_corr: f64::NAN,
        });
        let m = sink.report();
        assert_eq!(m.runs, 1);
        assert_eq!(m.evaluations, 30);
        assert_eq!(m.ul_evaluations, 10);
        assert_eq!(m.ll_evaluations, 20);
        assert_eq!(m.gp_node_evals, 500);
        assert_eq!(m.ll_solves, 10);
        assert_eq!(m.simplex_pivots, 170);
        assert_eq!(m.archive_updates, 1);
        assert_eq!(m.cache_hits, 2);
        assert_eq!(m.cache_misses, 8);
        assert_eq!(m.cache_evictions, 1);
        assert_eq!(m.cache_entries, 7);
        assert_eq!(m.compile_cache_hits, 40);
        assert_eq!(m.compile_cache_misses, 3);
        assert_eq!(m.compile_cache_evictions, 0);
        assert_eq!(m.compile_cache_entries, 3);
        assert_eq!(m.decode_cache_hits, 12);
        assert_eq!(m.decode_cache_misses, 4);
        assert_eq!(m.decode_cache_evictions, 2);
        assert_eq!(m.decode_cache_entries, 14);
        assert_eq!(m.surrogate_cells, 80);
        assert_eq!(m.surrogate_exact, 28);
        assert_eq!(m.surrogate_skipped, 52);
        // NaN correlations are excluded from the mean.
        assert!((m.surrogate_rank_corr_mean - 0.5).abs() < 1e-12);
        // Histograms: 20 GP-scored evals at 20 µs each, 10 solves at
        // 5 µs each, 3 compile misses at 30 µs each.
        assert_eq!(m.decode_pass_seconds.count(), 20);
        assert!((m.decode_pass_seconds.sum() - 400e-6).abs() < 1e-12);
        assert_eq!(m.gp_nodes_per_eval.count(), 20);
        assert_eq!(m.ll_solve_seconds.count(), 10);
        assert_eq!(m.simplex_pivots_per_solve.count(), 10);
        assert_eq!(m.gp_compile_seconds.count(), 3);
        assert!((m.gp_compile_seconds.sum() - 90e-6).abs() < 1e-12);
        // The upper batch had gp_nodes == 0: it is not a decode pass
        // and must not contribute to the decode histograms.
        assert!((m.gp_nodes_per_eval.max() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn eviction_deltas_accumulate_while_entries_gauge_tracks_last() {
        let sink = MetricsSink::new();
        sink.observe(&Event::DecodeCacheProbe { hits: 1, misses: 9, evictions: 3, entries: 6 });
        sink.observe(&Event::DecodeCacheProbe { hits: 7, misses: 3, evictions: 2, entries: 4 });
        let m = sink.report();
        assert_eq!(m.decode_cache_hits, 8, "hit deltas accumulate");
        assert_eq!(m.decode_cache_evictions, 5, "eviction deltas accumulate");
        assert_eq!(m.decode_cache_entries, 4, "entries is a last-value gauge");
    }

    #[test]
    fn counters_are_exact_under_threads() {
        let sink = MetricsSink::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        sink.observe(&Event::Evaluation {
                            level: Level::Lower,
                            count: 3,
                            gp_nodes: 7,
                            micros: 1,
                        });
                        sink.observe(&Event::LowerLevelSolve {
                            solves: 1,
                            pivots: 2,
                            micros: 1,
                        });
                    }
                });
            }
        });
        let m = sink.report();
        assert_eq!(m.ll_evaluations, 8 * 1000 * 3);
        assert_eq!(m.gp_node_evals, 8 * 1000 * 7);
        assert_eq!(m.ll_solves, 8 * 1000);
        assert_eq!(m.simplex_pivots, 8 * 1000 * 2);
        assert_eq!(m.decode_pass_seconds.count(), 8 * 1000 * 3);
        assert_eq!(m.ll_solve_seconds.count(), 8 * 1000);
    }

    #[test]
    fn phases_accrue_by_name() {
        let sink = MetricsSink::new();
        sink.observe(&Event::PhaseChange { phase: "relaxation" });
        sink.observe(&Event::PhaseChange { phase: "breeding" });
        sink.observe(&Event::PhaseChange { phase: "relaxation" });
        sink.observe(&Event::RunComplete {
            generations: 0,
            ul_evaluations: 0,
            ll_evaluations: 0,
            best_value: 0.0,
            best_gap: 0.0,
        });
        let m = sink.report();
        let names: Vec<&str> = m.phases.iter().map(|p| p.phase.as_str()).collect();
        assert_eq!(names, ["relaxation", "breeding"], "revisits merge by name");
        for p in &m.phases {
            assert!(p.seconds >= 0.0);
        }
    }

    #[test]
    fn generation_latency_is_summarized() {
        let sink = MetricsSink::new();
        for g in 0..3 {
            sink.observe(&Event::GenerationStart { generation: g });
            sink.observe(&Event::GenerationEnd {
                generation: g,
                evaluations: 10 * (g + 1),
                ul_best: 0.0,
                gap_best: 0.0,
            });
        }
        let m = sink.report();
        assert_eq!(m.generations, 3);
        assert_eq!(m.generation_seconds.count(), 3);
        assert!(m.generation_seconds.median() >= 0.0);
    }

    #[test]
    fn report_json_is_valid_and_complete() {
        let sink = MetricsSink::new();
        sink.observe(&Event::PhaseChange { phase: "relaxation" });
        sink.observe(&Event::Evaluation {
            level: Level::Upper,
            count: 4,
            gp_nodes: 0,
            micros: 9,
        });
        sink.observe(&Event::RunComplete {
            generations: 1,
            ul_evaluations: 4,
            ll_evaluations: 0,
            best_value: 1.0,
            best_gap: 0.5,
        });
        let text = sink.report().to_json();
        let value = parse(&text).unwrap_or_else(|e| panic!("bad JSON: {e}\n{text}"));
        for key in [
            "runs",
            "generations",
            "evaluations",
            "ul_evaluations",
            "ll_evaluations",
            "gp_node_evals",
            "ll_solves",
            "simplex_pivots",
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "cache_entries",
            "compile_cache_hits",
            "compile_cache_misses",
            "compile_cache_evictions",
            "compile_cache_entries",
            "decode_cache_hits",
            "decode_cache_misses",
            "decode_cache_evictions",
            "decode_cache_entries",
            "surrogate_cells",
            "surrogate_exact",
            "surrogate_skipped",
            "surrogate_rank_corr_mean",
            "archive_updates",
            "wall_seconds",
            "phases",
            "generation_seconds",
            "histograms",
        ] {
            assert!(value.get(key).is_some(), "missing key {key}");
        }
        assert_eq!(value.get("evaluations").and_then(Value::as_u64), Some(4));
        match value.get("phases") {
            Some(Value::Array(items)) => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].get("phase").and_then(Value::as_str), Some("relaxation"));
            }
            other => panic!("phases not an array: {other:?}"),
        }
        // An empty latency summary serializes NaN stats as null and must
        // still parse.
        assert!(value.get("generation_seconds").unwrap().get("mean").is_some());
        let hists = value.get("histograms").expect("histograms object");
        for key in [
            "ll_solve_seconds",
            "decode_pass_seconds",
            "gp_compile_seconds",
            "simplex_pivots_per_solve",
            "gp_nodes_per_eval",
        ] {
            let h = hists.get(key).unwrap_or_else(|| panic!("missing histogram {key}"));
            for stat in ["count", "sum", "mean", "p50", "p90", "p99", "max"] {
                assert!(h.get(stat).is_some(), "histogram {key} missing {stat}");
            }
        }
    }
}
