//! Property tests for the EA toolkit: operator bound preservation,
//! archive ordering invariants, selection pressure direction, and
//! seed-stream independence.

use bico_ea::archive::Archive;
use bico_ea::binary::{bitflip_mutation, random_bits, shuffle_mutation, two_point_crossover};
use bico_ea::real::{polynomial_mutation, sbx_crossover, RealOpsConfig};
use bico_ea::rng::seed_stream;
use bico_ea::select::{tournament, Direction};
use bico_ea::stats::Summary;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sbx_respects_arbitrary_boxes(
        seed: u64,
        genes in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0, 0.0f64..1.0, 0.0f64..1.0), 1..12),
    ) {
        // Build per-gene boxes [lo, lo+span] and parents inside them.
        let lo: Vec<f64> = genes.iter().map(|g| g.0).collect();
        let hi: Vec<f64> = genes.iter().map(|g| g.0 + g.1 + 1e-6).collect();
        let p1: Vec<f64> = genes.iter().map(|g| g.0 + (g.1 + 1e-6) * g.2).collect();
        let p2: Vec<f64> = genes.iter().map(|g| g.0 + (g.1 + 1e-6) * g.3).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let (c1, c2) = sbx_crossover(&p1, &p2, &lo, &hi, &RealOpsConfig::default(), &mut rng);
        for j in 0..lo.len() {
            prop_assert!(c1[j] >= lo[j] - 1e-9 && c1[j] <= hi[j] + 1e-9);
            prop_assert!(c2[j] >= lo[j] - 1e-9 && c2[j] <= hi[j] + 1e-9);
        }
    }

    #[test]
    fn polynomial_mutation_respects_boxes(
        seed: u64,
        genes in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0, 0.0f64..1.0), 1..12),
        prob in 0.0f64..1.0,
    ) {
        let lo: Vec<f64> = genes.iter().map(|g| g.0).collect();
        let hi: Vec<f64> = genes.iter().map(|g| g.0 + g.1).collect();
        let mut x: Vec<f64> = genes.iter().map(|g| g.0 + g.1 * g.2).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        polynomial_mutation(&mut x, &lo, &hi, prob, &RealOpsConfig::default(), &mut rng);
        for j in 0..lo.len() {
            prop_assert!(x[j] >= lo[j] - 1e-12 && x[j] <= hi[j] + 1e-12);
        }
    }

    #[test]
    fn binary_ops_preserve_structural_invariants(seed: u64, n in 2usize..64, p in 0.0f64..1.0) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = random_bits(n, p, &mut rng);
        let b = random_bits(n, 1.0 - p, &mut rng);
        let (c1, c2) = two_point_crossover(&a, &b, &mut rng);
        prop_assert_eq!(c1.len(), n);
        prop_assert_eq!(c2.len(), n);
        // Total popcount conserved across the pair.
        let before = a.iter().chain(&b).filter(|&&v| v).count();
        let after = c1.iter().chain(&c2).filter(|&&v| v).count();
        prop_assert_eq!(before, after);

        let mut m = c1.clone();
        shuffle_mutation(&mut m, 0.3, &mut rng);
        prop_assert_eq!(m.iter().filter(|&&v| v).count(),
                        c1.iter().filter(|&&v| v).count());

        let mut f = c2.clone();
        bitflip_mutation(&mut f, 1.0, &mut rng);
        for (x, y) in f.iter().zip(&c2) {
            prop_assert_eq!(*x, !*y);
        }
    }

    #[test]
    fn archive_is_always_sorted_and_bounded(
        cap in 1usize..20,
        entries in proptest::collection::vec((0u32..1000, -1e6f64..1e6), 0..100),
    ) {
        let mut a = Archive::new(cap, Direction::Maximize);
        for (g, f) in &entries {
            a.push(*g, *f);
        }
        prop_assert!(a.len() <= cap);
        let fits: Vec<f64> = a.iter().map(|(_, f)| f).collect();
        for w in fits.windows(2) {
            prop_assert!(w[0] >= w[1], "archive out of order: {fits:?}");
        }
        // The best archived fitness equals the max fed in (per distinct genome).
        if let Some((_, best)) = a.best() {
            let true_best = entries
                .iter()
                .map(|(_, f)| *f)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(best, true_best);
        }
    }

    #[test]
    fn tournament_winner_is_member_and_pressure_is_directional(
        seed: u64,
        fits in proptest::collection::vec(-1e3f64..1e3, 2..30),
        k in 1usize..8,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let w = tournament(&fits, k, Direction::Maximize, &mut rng);
        prop_assert!(w < fits.len());
        // With k = len * 4 the max must win (probability of missing it
        // is (1-1/n)^(4n) < 2%, so use a deterministic bound instead):
        let big = tournament(&fits, fits.len() * 64, Direction::Maximize, &mut rng);
        let max = fits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Allow failure only with astronomically small probability; the
        // seeded RNG makes this reproducible if it ever fires.
        prop_assert!(fits[big] == max || fits.len() > 64);
    }

    #[test]
    fn seed_streams_do_not_collide(master: u64, a in 0u64..10_000, b in 0u64..10_000) {
        if a != b {
            prop_assert_ne!(seed_stream(master, a), seed_stream(master, b));
        } else {
            prop_assert_eq!(seed_stream(master, a), seed_stream(master, b));
        }
    }

    #[test]
    fn summary_matches_naive_computation(values in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let s = Summary::of(&values);
        let naive_mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((s.mean() - naive_mean).abs() < 1e-6 * (1.0 + naive_mean.abs()));
        prop_assert_eq!(s.min(), values.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), values.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
        if values.len() >= 2 {
            let naive_var = values.iter().map(|v| (v - naive_mean).powi(2)).sum::<f64>()
                / (values.len() - 1) as f64;
            prop_assert!((s.std_dev() - naive_var.sqrt()).abs() < 1e-5 * (1.0 + naive_var.sqrt()));
        }
    }
}
