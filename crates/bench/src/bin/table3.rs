//! Reproduce **Table III** — best %-gap to lower-level optimality per
//! instance class, CARBON vs COBRA.
//!
//! ```text
//! cargo run -p bico-bench --release --bin table3 [--full|--smoke] [--runs N] [--seed S]
//!     [--trace-out run.jsonl] [--metrics-out metrics.json] [--log-level info]
//! ```

use bico_bench::{markdown_table, run_class_observed, AlgoKind, ExperimentOpts, ObsStack};
use bico_ea::hypothesis::mann_whitney_u;

/// The paper's reported Table III values (CARBON, COBRA) per class, for
/// side-by-side comparison.
const PAPER_TABLE3: [(f64, f64); 9] = [
    (1.13, 9.71),
    (1.87, 12.33),
    (3.13, 23.31),
    (0.37, 25.19),
    (0.76, 26.08),
    (1.62, 27.75),
    (0.15, 30.07),
    (0.34, 34.68),
    (0.74, 35.19),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = ExperimentOpts::from_args(&args);
    eprintln!(
        "Table III reproduction — tier {:?}, {} runs/class, seed {}",
        opts.tier,
        opts.runs(),
        opts.seed
    );

    let stack = ObsStack::from_opts(&opts);
    let mut rows = Vec::new();
    let mut avg_carbon = 0.0;
    let mut avg_cobra = 0.0;
    let classes = opts.classes();
    for (idx, &class) in classes.iter().enumerate() {
        eprintln!("  class {}x{} ...", class.0, class.1);
        let carbon = run_class_observed(AlgoKind::Carbon, class, &opts, &stack);
        let cobra = run_class_observed(AlgoKind::Cobra, class, &opts, &stack);
        avg_carbon += carbon.best_gap;
        avg_cobra += cobra.best_gap;
        let (p_car, p_cob) = PAPER_TABLE3.get(idx).copied().unwrap_or((f64::NAN, f64::NAN));
        // Rank-sum significance of the per-run gap difference.
        let p_value = mann_whitney_u(&carbon.gaps, &cobra.gaps)
            .map(|t| format!("{:.1e}", t.p_two_sided))
            .unwrap_or_else(|| "-".into());
        rows.push(vec![
            class.0.to_string(),
            class.1.to_string(),
            format!("{:.2}", carbon.best_gap),
            format!("{:.2}", cobra.best_gap),
            format!("{p_car:.2}"),
            format!("{p_cob:.2}"),
            p_value,
        ]);
    }
    let n = classes.len() as f64;
    rows.push(vec![
        "avg".into(),
        "".into(),
        format!("{:.2}", avg_carbon / n),
        format!("{:.2}", avg_cobra / n),
        "1.12".into(),
        "24.92".into(),
        "".into(),
    ]);

    println!(
        "{}",
        markdown_table(
            &[
                "# Variables",
                "# Constraints",
                "CARBON %-gap",
                "COBRA %-gap",
                "paper CARBON",
                "paper COBRA",
                "rank-sum p",
            ],
            &rows
        )
    );
    if avg_carbon < avg_cobra {
        println!(
            "SHAPE OK: CARBON achieves smaller gaps than COBRA (paper's headline result)."
        );
    } else {
        println!("SHAPE MISMATCH: CARBON did not beat COBRA on gap at this budget.");
    }
    stack.finish();
}
