//! Rayon scaling of the population-evaluation kernel: the same batch of
//! lower-level evaluations on thread pools of different sizes, plus the
//! lower-level solve cache on a repeated-pricing workload.
//!
//! Besides the criterion groups, the binary has a machine-readable mode:
//!
//! ```text
//! cargo bench --bench scaling -- --json-out BENCH_scaling.json [--reduced] [--huge]
//! ```
//!
//! which skips criterion entirely and writes one JSON object with the
//! decode ms/pass (interpreted vs compiled+CSE), the GP compile-cache
//! hit rate on a repeated-elite workload, the decode-cache hit rate and
//! ms/pass on a repeated evaluation-matrix workload, and the solve-cache
//! hit rate and pivot counts — the perf trajectory CI records per
//! commit. `--reduced` shrinks the instance and workloads to CI size.
//!
//! `--huge` appends a tier two orders of magnitude past paper class
//! (20 000 sparse bundles × 100 services): dense tableau vs sparse
//! revised simplex ms/solve on the same covering LP, and scalar vs
//! chunked-batched decode ms/pass on the same instance, with agreement
//! enforced in-process (KKT certificates for both LP paths, bitwise for
//! the decoders) and a ≥3× end-to-end speedup floor.

use bico_bcpop::{
    bcpop_primitives, evaluate_pair, generate, greedy_cover, greedy_cover_batched,
    CompiledGpScorer, CostPerCoverageScorer, GeneratorConfig, GpScorer, Relaxation,
    RelaxationSolver,
};
use bico_core::decode_cache::{cell_key, decode_mode, tree_scorer_key, DecodeOutcome};
use bico_core::{
    BilinearProblem, Carbon, CarbonConfig, CoevStrategy, DecodeCache, GpCompileCache,
    MaximinCoev, MaximinConfig, SurrogateGate,
};
use bico_ea::cache::EvictionPolicy;
use bico_ea::hypothesis::{compare_run_sets, seed_matrix};
use bico_ea::{seed_stream, SolveCache};
use bico_gp::grow;
use bico_lp::{check_certificate, LpProblem, LpStatus, Relation, SimplexOptions, SparseMode};
use bico_obs::analyze::{analyze, DEFAULT_STAGNATION_WINDOW};
use bico_obs::replay::parse_trace;
use bico_obs::{JsonlSink, MetricsSink, SharedBuffer};
use criterion::{criterion_group, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::cell::RefCell;
use std::hint::black_box;
use std::time::Instant;

/// Untimed accounting pass: GP scoring and greedy decode throughput of
/// the interpreted and compiled paths on a paper-class instance,
/// reported in the same spirit as the cache hit-rate below.
fn report_decode_throughput() {
    let inst = generate(&GeneratorConfig::paper_class(250, 10), 42);
    let costs = inst.costs_for(&vec![50.0; inst.num_own()]);
    let relax = RelaxationSolver::new(&inst).solve(&costs).unwrap();
    let ps = bcpop_primitives();
    let expr = grow(&ps, 4, 7, &mut SmallRng::seed_from_u64(7)).unwrap();
    let reps = 50u32;

    let t0 = Instant::now();
    let mut interp_nodes = 0u64;
    let mut interp_steps = 0u64;
    for _ in 0..reps {
        let mut scorer = GpScorer::new(&expr, &ps);
        interp_steps += greedy_cover(&inst, &costs, &mut scorer, Some(&relax)).steps as u64;
        interp_nodes += scorer.nodes_evaluated();
    }
    let interp = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut comp_nodes = 0u64;
    let mut comp_steps = 0u64;
    for _ in 0..reps {
        let mut scorer = CompiledGpScorer::new(&expr, &ps).unwrap();
        comp_steps +=
            greedy_cover_batched(&inst, &costs, &mut scorer, Some(&relax)).steps as u64;
        comp_nodes += scorer.nodes_evaluated();
    }
    let comp = t1.elapsed().as_secs_f64();

    assert_eq!(interp_nodes, comp_nodes, "node accounting must agree across paths");
    eprintln!(
        "decode_throughput 250x10 ({} nodes/tree): interpreted {:.2e} GP nodes/s, \
         {:.2e} greedy steps/s; compiled {:.2e} GP nodes/s, {:.2e} greedy steps/s",
        expr.len(),
        interp_nodes as f64 / interp.max(1e-12),
        interp_steps as f64 / interp.max(1e-12),
        comp_nodes as f64 / comp.max(1e-12),
        comp_steps as f64 / comp.max(1e-12),
    );
}

fn bench_scaling(c: &mut Criterion) {
    report_decode_throughput();
    let inst = generate(&GeneratorConfig::paper_class(250, 10), 42);
    let pricings: Vec<Vec<f64>> =
        (0..32).map(|i| vec![10.0 + i as f64 * 3.0; inst.num_own()]).collect();
    let solver = RelaxationSolver::new(&inst);

    let mut group = c.benchmark_group("rayon_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let pool =
            rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool");
        group.bench_function(format!("eval32_threads_{threads}"), |b| {
            b.iter(|| {
                pool.install(|| {
                    let total: f64 = pricings
                        .par_iter()
                        .map(|prices| {
                            let costs = inst.costs_for(prices);
                            let relax = solver.solve(&costs).unwrap();
                            greedy_cover(
                                &inst,
                                &costs,
                                &mut CostPerCoverageScorer,
                                Some(&relax),
                            )
                            .cost
                        })
                        .sum();
                    black_box(total)
                })
            })
        });
    }
    group.finish();
}

/// The solve cache on a repeated-pricing workload: a small set of
/// distinct pricings probed many times over, the access pattern elite
/// re-injection and archive replay produce during co-evolution.
fn bench_solve_cache(c: &mut Criterion) {
    let inst = generate(&GeneratorConfig::paper_class(250, 10), 42);
    let solver = RelaxationSolver::new(&inst);
    let distinct: Vec<Vec<f64>> =
        (0..8).map(|i| vec![10.0 + i as f64 * 3.0; inst.num_own()]).collect();
    let workload: Vec<&Vec<f64>> = (0..256).map(|i| &distinct[i % distinct.len()]).collect();

    // Untimed accounting pass: report hit rate and pivot reduction, and
    // hold the ISSUE's acceptance bar (hits > 0, fewer total pivots).
    let cold_pivots: u64 =
        workload.iter().map(|p| solver.solve(&inst.costs_for(p)).unwrap().pivots).sum();
    let cache: SolveCache<Relaxation> = SolveCache::new(1024);
    let mut cached_pivots = 0u64;
    for p in &workload {
        let (r, hit) =
            cache.get_or_insert_with(p, || solver.solve(&inst.costs_for(p)).unwrap());
        if !hit {
            cached_pivots += r.pivots;
        }
    }
    let s = cache.stats();
    assert!(s.hits > 0, "repeated pricings must hit the cache");
    assert!(
        cached_pivots < cold_pivots,
        "caching must reduce total simplex pivots ({cached_pivots} vs {cold_pivots})"
    );
    eprintln!(
        "solve_cache: {} probes, {} hits ({:.1}% hit rate), pivots {cold_pivots} -> \
         {cached_pivots} ({:.1}% reduction)",
        s.hits + s.misses,
        s.hits,
        100.0 * s.hits as f64 / (s.hits + s.misses) as f64,
        100.0 * (cold_pivots - cached_pivots) as f64 / cold_pivots as f64,
    );

    let mut group = c.benchmark_group("solve_cache");
    group.sample_size(10);
    group.bench_function("repeated_pricing_cold", |b| {
        b.iter(|| {
            let total: f64 = workload
                .iter()
                .map(|p| solver.solve(&inst.costs_for(p)).unwrap().lower_bound)
                .sum();
            black_box(total)
        })
    });
    group.bench_function("repeated_pricing_cached", |b| {
        b.iter(|| {
            let cache: SolveCache<Relaxation> = SolveCache::new(1024);
            let total: f64 = workload
                .iter()
                .map(|p| {
                    cache
                        .get_or_insert_with(p, || solver.solve(&inst.costs_for(p)).unwrap())
                        .0
                        .lower_bound
                })
                .sum();
            black_box(total)
        })
    });
    group.finish();
}

/// The `--huge` tier: a generator-backed instance far beyond paper
/// class (20 000 bundles × 100 services at ~8% coverage density) where
/// the sparse revised simplex and the chunked decode kernels carry the
/// run. The dense-tableau and scalar-decoder references solve the
/// *same* instance, agreement is enforced in-process — objective
/// comparison plus [`check_certificate`] KKT checks for the two LP
/// implementations (their pivot sequences legitimately differ),
/// bitwise equality for the two decoders — and the fast configuration
/// must clear the ≥3× end-to-end acceptance floor on at least one of
/// ms/solve, ms/pass. Returns the rendered `"huge"` JSON block.
fn huge_json_block(reduced: bool) -> String {
    let (nb, ns) = (20_000usize, 100usize);
    let reps = if reduced { 1u32 } else { 3 };
    let cfg = GeneratorConfig {
        num_bundles: nb,
        num_services: ns,
        own_fraction: 0.1,
        // Low tightness keeps the greedy step count (and the CI wall
        // clock) bounded; the LP dimensions are unaffected by it.
        tightness: 0.01,
        density: 0.08,
        max_units: 100,
        cost_noise: 0.25,
    };
    let inst = generate(&cfg, 4242);
    let costs = inst.costs_for(&vec![50.0; inst.num_own()]);

    // The covering relaxation as a raw LP, so both implementations can
    // be pinned and certificate-checked on the exact same system.
    let mut p = LpProblem::minimize(nb);
    for j in 0..nb {
        p.set_bounds(j, 0.0, 1.0);
    }
    for k in 0..ns {
        let row: Vec<(usize, f64)> = (0..nb)
            .filter_map(|j| {
                let v = inst.coverage(j, k);
                (v > 0).then_some((j, v as f64))
            })
            .collect();
        p.add_constraint(&row, Relation::Ge, inst.requirement(k) as f64);
    }
    p.set_objective(&costs);
    let nnz: usize = (0..ns).map(|k| inst.covering_bundles(k).len()).sum();
    let density = nnz as f64 / (nb * ns) as f64;

    let timed_solve = |opts: &SimplexOptions| {
        let t = Instant::now();
        let mut sol = p.solve_with(opts).unwrap();
        for _ in 1..reps {
            sol = p.solve_with(opts).unwrap();
        }
        (t.elapsed().as_secs_f64() * 1e3 / f64::from(reps), sol)
    };
    let (dense_ms, dense_sol) =
        timed_solve(&SimplexOptions { sparse: SparseMode::Never, ..Default::default() });
    let (sparse_ms, sparse_sol) =
        timed_solve(&SimplexOptions { sparse: SparseMode::Always, ..Default::default() });
    assert_eq!(dense_sol.status, LpStatus::Optimal);
    assert_eq!(sparse_sol.status, LpStatus::Optimal);
    check_certificate(&p, &dense_sol, 1e-6).expect("dense KKT certificate");
    check_certificate(&p, &sparse_sol, 1e-6).expect("sparse KKT certificate");
    let obj_rel_diff =
        (dense_sol.objective - sparse_sol.objective).abs() / dense_sol.objective.abs().max(1.0);
    assert!(obj_rel_diff < 1e-6, "dense/sparse optima disagree (rel diff {obj_rel_diff:.3e})");

    // One relaxation (from the production sparse path) feeds both
    // decoders, making scalar vs batched a pure decode-kernel contest.
    let relax = Relaxation {
        lower_bound: sparse_sol.objective,
        duals: sparse_sol.duals.clone(),
        xbar: sparse_sol.x.clone(),
        pivots: sparse_sol.iterations as u64,
    };
    let ps = bcpop_primitives();
    let expr = grow(&ps, 5, 8, &mut SmallRng::seed_from_u64(7)).unwrap();

    let t = Instant::now();
    let mut scalar_out = None;
    for _ in 0..reps {
        let mut scorer = GpScorer::new(&expr, &ps);
        scalar_out = Some(greedy_cover(&inst, &costs, &mut scorer, Some(&relax)));
    }
    let scalar_ms = t.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
    let scalar_out = scalar_out.unwrap();

    let t = Instant::now();
    let mut batched_out = None;
    for _ in 0..reps {
        let mut scorer = CompiledGpScorer::new(&expr, &ps).unwrap();
        batched_out = Some(greedy_cover_batched(&inst, &costs, &mut scorer, Some(&relax)));
    }
    let batched_ms = t.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
    let batched_out = batched_out.unwrap();
    assert_eq!(
        scalar_out.cost.to_bits(),
        batched_out.cost.to_bits(),
        "batched decode must stay bit-identical at huge scale"
    );
    assert_eq!(scalar_out.chosen, batched_out.chosen);

    let lp_speedup = dense_ms / sparse_ms.max(1e-12);
    let decode_speedup = scalar_ms / batched_ms.max(1e-12);
    assert!(
        lp_speedup >= 3.0 || decode_speedup >= 3.0,
        "huge tier must show a >=3x end-to-end win \
         (lp {lp_speedup:.2}x, decode {decode_speedup:.2}x)"
    );
    eprintln!(
        "huge {nb}x{ns} (density {density:.3}): lp dense {dense_ms:.1} ms/solve \
         ({dp} pivots) vs sparse {sparse_ms:.1} ms/solve ({sp} pivots) = {lp_speedup:.2}x; \
         decode scalar {scalar_ms:.1} ms/pass vs batched {batched_ms:.1} ms/pass \
         = {decode_speedup:.2}x ({steps} greedy steps)",
        dp = dense_sol.iterations,
        sp = sparse_sol.iterations,
        steps = batched_out.steps,
    );
    format!(
        "{{\"instance_class\": \"{nb}x{ns}\", \"density\": {density:.4}, \
         \"reps\": {reps}, \
         \"lp\": {{\"dense_ms_per_solve\": {dense_ms:.3}, \
         \"sparse_ms_per_solve\": {sparse_ms:.3}, \"speedup\": {lp_speedup:.3}, \
         \"dense_pivots\": {dp}, \"sparse_pivots\": {sp}, \
         \"objective_rel_diff\": {obj_rel_diff:.3e}}}, \
         \"decode\": {{\"scalar_ms_per_pass\": {scalar_ms:.3}, \
         \"batched_ms_per_pass\": {batched_ms:.3}, \"speedup\": {decode_speedup:.3}, \
         \"greedy_steps\": {steps}}}}}",
        dp = dense_sol.iterations,
        sp = sparse_sol.iterations,
        steps = batched_out.steps,
    )
}

/// The surrogate-gate quality protocol (DESIGN §6.7): a seed matrix of
/// full CARBON runs with the gate off vs at its default top-k, compared
/// on final %-gap with the Mann–Whitney U test. The gate must cut exact
/// lower-level cell evaluations by ≥2× without a statistically
/// significant gap degradation; ms/generation for both arms goes into
/// the JSON so CI tracks the wall-clock payoff per commit. Returns the
/// rendered `"surrogate"` JSON block.
fn surrogate_json_block(reduced: bool) -> String {
    let (nb, ns, seeds, gens) =
        if reduced { (100usize, 6usize, 8usize, 8u64) } else { (500, 30, 30, 12) };
    let inst = generate(&GeneratorConfig::paper_class(nb, ns), 42);
    let pop = 12usize;
    let training = 6usize;
    let base_cfg = CarbonConfig {
        ul_pop_size: pop,
        ll_pop_size: pop,
        ul_archive_size: pop,
        ll_archive_size: pop,
        training_samples: training,
        ul_evaluations: pop as u64 * gens,
        ll_evaluations: (pop * training) as u64 * gens,
        ..Default::default()
    };
    assert_eq!(base_cfg.surrogate_gate, SurrogateGate::Off, "gate defaults off");
    let mut gated_cfg = base_cfg.clone();
    gated_cfg.surrogate_gate = SurrogateGate::top_k();

    // Both arms run under a MetricsSink so observer overhead cancels in
    // the ms/generation comparison; only the gated arm emits
    // SurrogateProbe counters.
    // (seconds, generations, cells screened, exact evals)
    let arm_stats = RefCell::new((0.0f64, 0u64, 0u64, 0u64));
    let run_arm = |cfg: &CarbonConfig, seed: u64| {
        let sink = MetricsSink::new();
        let t = Instant::now();
        let r = Carbon::new(&inst, cfg.clone()).run_observed(seed, &sink);
        let secs = t.elapsed().as_secs_f64();
        let m = sink.report();
        let mut st = arm_stats.borrow_mut();
        st.0 += secs;
        st.1 += r.generations as u64;
        st.2 += m.surrogate_cells;
        st.3 += m.surrogate_exact;
        r.best_gap
    };
    let off_gaps = seed_matrix(0x5EED, seeds, |s| run_arm(&base_cfg, s));
    let (off_secs, off_gens, off_cells, _) = arm_stats.replace((0.0, 0, 0, 0));
    assert_eq!(off_cells, 0, "the off arm must never screen cells");
    let on_gaps = seed_matrix(0x5EED, seeds, |s| run_arm(&gated_cfg, s));
    let (on_secs, on_gens, cells, exact) = arm_stats.into_inner();

    let off_ms_per_gen = off_secs * 1e3 / off_gens.max(1) as f64;
    let on_ms_per_gen = on_secs * 1e3 / on_gens.max(1) as f64;
    let speedup = off_ms_per_gen / on_ms_per_gen.max(1e-12);
    assert!(cells > 0 && exact > 0, "gated arm must screen and evaluate cells");
    let reduction = cells as f64 / exact as f64;
    assert!(
        reduction >= 2.0,
        "surrogate gate must cut exact evaluations >=2x (got {reduction:.2}x: \
         {exact} exact of {cells} cells)"
    );

    let cmp = compare_run_sets(&off_gaps, &on_gaps);
    // None (empty or zero-variance samples) means "indistinguishable".
    let p = cmp.test.as_ref().map_or(1.0, |t| t.p_two_sided);
    let gap_delta = cmp.b_mean - cmp.a_mean;
    assert!(
        !(p < 0.05 && gap_delta > 0.0),
        "gated runs significantly degrade gap quality \
         (off mean {:.4}, on mean {:.4}, p {p:.4})",
        cmp.a_mean,
        cmp.b_mean
    );
    eprintln!(
        "surrogate {nb}x{ns} ({seeds} seeds x {gens} gens): \
         off {off_ms_per_gen:.1} ms/gen vs topk {on_ms_per_gen:.1} ms/gen = {speedup:.2}x; \
         exact evals {exact}/{cells} ({reduction:.2}x reduction); \
         gap off {:.4} vs on {:.4} (delta {gap_delta:+.4}, MW p {p:.3})",
        cmp.a_mean, cmp.b_mean,
    );
    format!(
        "{{\"instance_class\": \"{nb}x{ns}\", \"seeds\": {seeds}, \
         \"generations_per_run\": {gens}, \
         \"off_ms_per_gen\": {off_ms_per_gen:.3}, \"on_ms_per_gen\": {on_ms_per_gen:.3}, \
         \"ms_per_gen_speedup\": {speedup:.3}, \
         \"cells_screened\": {cells}, \"exact_evals\": {exact}, \
         \"exact_eval_reduction\": {reduction:.3}, \
         \"off_gap_mean\": {off_mean:.4}, \"on_gap_mean\": {on_mean:.4}, \
         \"gap_delta\": {gap_delta:.4}, \"mw_p\": {p:.4}}}",
        off_mean = cmp.a_mean,
        on_mean = cmp.b_mean,
    )
}

/// The `--json-out` measurement pass. Every number is also sanity-
/// checked here so a regressed build fails the bench job instead of
/// silently recording garbage.
fn write_bench_json(path: &str, reduced: bool, huge: bool) {
    let (nb, ns, reps, workload_len) =
        if reduced { (100usize, 6usize, 8u32, 64usize) } else { (500, 30, 30, 256) };
    let inst = generate(&GeneratorConfig::paper_class(nb, ns), 42);
    let costs = inst.costs_for(&vec![50.0; inst.num_own()]);
    let solver = RelaxationSolver::new(&inst);
    let relax = solver.solve(&costs).unwrap();
    let ps = bcpop_primitives();
    // Champion-depth tree (max evolved depth 8) — the greedy_cover bench's
    // configuration, so ms/pass is comparable across reports.
    let expr = grow(&ps, 5, 8, &mut SmallRng::seed_from_u64(7)).unwrap();

    let t0 = Instant::now();
    let mut ref_cost = 0.0f64;
    let mut interp_nodes = 0u64;
    for _ in 0..reps {
        let mut scorer = GpScorer::new(&expr, &ps);
        ref_cost = greedy_cover(&inst, &costs, &mut scorer, Some(&relax)).cost;
        interp_nodes += scorer.nodes_evaluated();
    }
    let interp_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(reps);

    // Compiled path exactly as CARBON runs it: one cached compilation,
    // per-decode scorers sharing the Arc'd program.
    let gp_cache = GpCompileCache::new(64);
    let t1 = Instant::now();
    let mut fast_cost = 0.0f64;
    let mut comp_nodes = 0u64;
    for _ in 0..reps {
        let (prog, _) = gp_cache.get_or_compile(&expr, &ps);
        let mut scorer = CompiledGpScorer::from_program(prog);
        fast_cost = greedy_cover_batched(&inst, &costs, &mut scorer, Some(&relax)).cost;
        comp_nodes += scorer.nodes_evaluated();
    }
    let compiled_ms = t1.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
    assert_eq!(ref_cost.to_bits(), fast_cost.to_bits(), "fast path must be bit-identical");
    assert_eq!(interp_nodes, comp_nodes, "node accounting must agree across paths");

    // Repeated-elite compile workload: a small pool of distinct trees
    // probed round-robin, the traffic elites/clones generate per run.
    let pool: Vec<_> = (0..8u64)
        .map(|i| grow(&ps, 3, 7, &mut SmallRng::seed_from_u64(100 + i)).unwrap())
        .collect();
    let cc = GpCompileCache::new(1024);
    for i in 0..workload_len {
        cc.get_or_compile(&pool[i % pool.len()], &ps);
    }
    let ccs = cc.stats();
    assert!(ccs.hits > 0, "repeated elites must hit the compile cache");

    // Repeated evaluation-matrix decode workload: a pool of trees × a
    // pool of pricings swept several times — the cell traffic elite
    // re-injection and archive replay generate across generations. The
    // reference decodes every cell of every pass fresh; the memoized
    // sweep recalls repeats from the decode cache. Both must agree to
    // the bit.
    let dc_passes = if reduced { 3u32 } else { 6 };
    let dc_trees = &pool[..4.min(pool.len())];
    let dc_pricings: Vec<Vec<f64>> =
        (0..6).map(|i| vec![12.0 + i as f64 * 5.0; inst.num_own()]).collect();
    let dc_relaxes: Vec<Relaxation> =
        dc_pricings.iter().map(|p| solver.solve(&inst.costs_for(p)).unwrap()).collect();
    let decode_cell = |ti: usize, pi: usize| -> DecodeOutcome {
        let prices = &dc_pricings[pi];
        let costs = inst.costs_for(prices);
        let (prog, _) = gp_cache.get_or_compile(&dc_trees[ti], &ps);
        let mut scorer = CompiledGpScorer::from_program(prog);
        let cover = greedy_cover_batched(&inst, &costs, &mut scorer, Some(&dc_relaxes[pi]));
        let eval = evaluate_pair(&inst, prices, &cover.chosen, dc_relaxes[pi].lower_bound);
        DecodeOutcome { cover, eval, gp_nodes: scorer.nodes_evaluated() }
    };

    let t2 = Instant::now();
    let mut dc_ref_sum = 0.0f64;
    for _ in 0..dc_passes {
        for ti in 0..dc_trees.len() {
            for pi in 0..dc_pricings.len() {
                dc_ref_sum += decode_cell(ti, pi).eval.ul_value;
            }
        }
    }
    let dc_ref_ms = t2.elapsed().as_secs_f64() * 1e3 / f64::from(dc_passes);

    let dc = DecodeCache::new(4096);
    let mode = decode_mode(false, true, true);
    let tree_keys: Vec<Vec<u64>> = dc_trees.iter().map(tree_scorer_key).collect();
    let t3 = Instant::now();
    let mut dc_memo_sum = 0.0f64;
    for _ in 0..dc_passes {
        for (ti, tkey) in tree_keys.iter().enumerate() {
            for (pi, prices) in dc_pricings.iter().enumerate() {
                let (out, _) =
                    dc.get_or_decode(cell_key(mode, tkey, prices), || decode_cell(ti, pi));
                dc_memo_sum += out.eval.ul_value;
            }
        }
    }
    let dc_memo_ms = t3.elapsed().as_secs_f64() * 1e3 / f64::from(dc_passes);
    assert_eq!(
        dc_ref_sum.to_bits(),
        dc_memo_sum.to_bits(),
        "memoized decodes must be bit-identical"
    );
    let dcs = dc.stats();
    assert!(dcs.hits > 0, "repeated matrix cells must hit the decode cache");

    // Repeated-pricing solve workload (as in bench_solve_cache).
    let distinct: Vec<Vec<f64>> =
        (0..8).map(|i| vec![10.0 + i as f64 * 3.0; inst.num_own()]).collect();
    let cold_pivots: u64 = (0..workload_len)
        .map(|i| solver.solve(&inst.costs_for(&distinct[i % distinct.len()])).unwrap().pivots)
        .sum();
    let sc: SolveCache<Relaxation> = SolveCache::new(1024);
    let mut cached_pivots = 0u64;
    for i in 0..workload_len {
        let p = &distinct[i % distinct.len()];
        let (r, hit) = sc.get_or_insert_with(p, || solver.solve(&inst.costs_for(p)).unwrap());
        if !hit {
            cached_pivots += r.pivots;
        }
    }
    let scs = sc.stats();
    assert!(scs.hits > 0 && cached_pivots < cold_pivots);

    // Eviction-policy ablation: a hot set re-referenced every iteration
    // against a cold stream cycling a pool larger than the cache, under
    // FIFO vs CLOCK. The caches shard their capacity 16 ways, so the
    // bound must leave each shard room for more than one entry — with
    // per-shard capacity 2 the cold stream steadily flushes hot entries
    // under FIFO, while second-chance sees their reference bits and
    // keeps them resident. The pricing vectors vary per coordinate with
    // non-dyadic steps: constant vectors whose coordinates share dyadic
    // deltas all collapse into one FNV shard (the deltas repeat every 8
    // key bytes and the FNV prime is a unit of order 8 mod 16), which
    // would reduce the whole cache to a single cap-2 shard. Hit rates
    // are deterministic (FNV routing, fixed workload) and clock must
    // dominate.
    let hit_rate = |h: u64, m: u64| h as f64 / (h + m).max(1) as f64;
    let evict_iters = (workload_len / 4).max(16);
    let cold_pool = 48usize; // > capacity, so cold keys never accumulate
    let hot_pricings: Vec<Vec<f64>> = (0..8)
        .map(|i| (0..inst.num_own()).map(|j| 10.0 + i as f64 * 3.1 + j as f64 * 0.17).collect())
        .collect();
    let cold_pricings: Vec<Vec<f64>> = (0..cold_pool)
        .map(|k| (0..inst.num_own()).map(|j| 8.0 + k as f64 * 0.53 + j as f64 * 0.29).collect())
        .collect();
    let evict_solve_rate = |policy: EvictionPolicy| {
        let c: SolveCache<Relaxation> = SolveCache::with_policy(32, policy);
        for i in 0..evict_iters {
            for p in &hot_pricings {
                c.get_or_insert_with(p, || solver.solve(&inst.costs_for(p)).unwrap());
            }
            for k in 0..4usize {
                let cold = &cold_pricings[(4 * i + k) % cold_pool];
                c.get_or_insert_with(cold, || solver.solve(&inst.costs_for(cold)).unwrap());
            }
        }
        let s = c.stats();
        hit_rate(s.hits, s.misses)
    };
    let solve_fifo = evict_solve_rate(EvictionPolicy::Fifo);
    let solve_clock = evict_solve_rate(EvictionPolicy::Clock);
    assert!(
        solve_clock >= solve_fifo,
        "clock must not lose to fifo on the hot/cold solve workload \
         ({solve_clock:.3} vs {solve_fifo:.3})"
    );
    let hot_relaxes: Vec<Relaxation> = hot_pricings
        .iter()
        .take(4)
        .map(|p| solver.solve(&inst.costs_for(p)).unwrap())
        .collect();
    let cold_relaxes: Vec<Relaxation> =
        cold_pricings.iter().map(|p| solver.solve(&inst.costs_for(p)).unwrap()).collect();
    let decode_with = |ti: usize, prices: &[f64], relax: &Relaxation| -> DecodeOutcome {
        let costs = inst.costs_for(prices);
        let (prog, _) = gp_cache.get_or_compile(&dc_trees[ti], &ps);
        let mut scorer = CompiledGpScorer::from_program(prog);
        let cover = greedy_cover_batched(&inst, &costs, &mut scorer, Some(relax));
        let eval = evaluate_pair(&inst, prices, &cover.chosen, relax.lower_bound);
        DecodeOutcome { cover, eval, gp_nodes: scorer.nodes_evaluated() }
    };
    let evict_decode_rate = |policy: EvictionPolicy| {
        let c = DecodeCache::with_policy(32, policy);
        for i in 0..evict_iters {
            for (ti, tkey) in tree_keys.iter().enumerate() {
                for (pi, prices) in hot_pricings.iter().take(4).enumerate() {
                    c.get_or_decode(cell_key(mode, tkey, prices), || {
                        decode_with(ti, prices, &hot_relaxes[pi])
                    });
                }
            }
            for k in 0..2usize {
                let pi = (2 * i + k) % cold_pool;
                let prices = &cold_pricings[pi];
                c.get_or_decode(cell_key(mode, &tree_keys[0], prices), || {
                    decode_with(0, prices, &cold_relaxes[pi])
                });
            }
        }
        let s = c.stats();
        hit_rate(s.hits, s.misses)
    };
    let decode_fifo = evict_decode_rate(EvictionPolicy::Fifo);
    let decode_clock = evict_decode_rate(EvictionPolicy::Clock);
    assert!(
        decode_clock >= decode_fifo,
        "clock must not lose to fifo on the hot/cold decode workload \
         ({decode_clock:.3} vs {decode_fifo:.3})"
    );
    eprintln!(
        "eviction: solve fifo {solve_fifo:.3} vs clock {solve_clock:.3} hit rate \
         (delta {:+.3}); decode fifo {decode_fifo:.3} vs clock {decode_clock:.3} \
         (delta {:+.3})",
        solve_clock - solve_fifo,
        decode_clock - decode_fifo,
    );

    let surrogate_block = surrogate_json_block(reduced);

    // Maximin pathology trajectory: the bilinear substrate has a known
    // game value, so the plain strategy's see-saw amplitude and the
    // shared strategy's equilibrium error are *absolute* quality
    // metrics, not relative ms/pass numbers. Fixed seed streams keep
    // the report deterministic; the regression gate requires the
    // amplitude to stay strictly positive (the substrate must keep
    // cycling under plain scoring, or the pathology suite tests
    // nothing) and the shared error not to drift upward.
    let mm_seeds = if reduced { 3usize } else { 6 };
    let mut plain_amplitude = 0.0f64;
    let mut plain_err = 0.0f64;
    let mut shared_err = 0.0f64;
    for i in 0..mm_seeds {
        let seed = seed_stream(0xB1C0, i as u64);
        let run = |strategy| {
            MaximinCoev::new(
                BilinearProblem::symmetric(2),
                MaximinConfig { strategy, ..Default::default() },
            )
        };
        let buffer = SharedBuffer::new();
        let sink = JsonlSink::new(buffer.clone());
        let plain = run(CoevStrategy::PredatorPrey).run_observed(seed, &sink);
        let records = parse_trace(&buffer.contents()).expect("maximin trace parses");
        let verdict = analyze(&records, DEFAULT_STAGNATION_WINDOW).seesaw;
        assert!(verdict.detected, "plain scoring must see-saw on the bilinear substrate");
        plain_amplitude += verdict.amplitude();
        plain_err += plain.equilibrium_error;
        shared_err += run(CoevStrategy::SharedFitness).run(seed).equilibrium_error;
    }
    plain_amplitude /= mm_seeds as f64;
    plain_err /= mm_seeds as f64;
    shared_err /= mm_seeds as f64;
    assert!(plain_amplitude > 0.0, "see-saw amplitude collapsed to zero");

    let huge_block = if huge {
        format!(",\n  \"huge\": {}", huge_json_block(reduced))
    } else {
        String::new()
    };
    let rate = |h: u64, m: u64| h as f64 / (h + m).max(1) as f64;
    let json = format!(
        "{{\n  \"bench\": \"scaling\",\n  \"reduced\": {reduced},\n  \
         \"instance_class\": \"{nb}x{ns}\",\n  \"tree_nodes\": {tree_nodes},\n  \
         \"passes\": {reps},\n  \"interp_ms_per_pass\": {interp_ms:.4},\n  \
         \"compiled_ms_per_pass\": {compiled_ms:.4},\n  \"decode_speedup\": {speedup:.3},\n  \
         \"gp_nodes_per_pass\": {nodes_per_pass},\n  \
         \"compile_cache\": {{\"probes\": {ccp}, \"hits\": {cch}, \"misses\": {ccm}, \
         \"hit_rate\": {ccr:.4}}},\n  \
         \"decode_cache\": {{\"probes\": {dcp}, \"hits\": {dch}, \"hit_rate\": {dcr:.4}, \
         \"ref_ms_per_pass\": {dc_ref_ms:.4}, \"memo_ms_per_pass\": {dc_memo_ms:.4}, \
         \"speedup\": {dc_speedup:.3}}},\n  \
         \"solve_cache\": {{\"probes\": {scp}, \"hits\": {sch}, \"hit_rate\": {scr:.4}, \
         \"pivots_cold\": {cold_pivots}, \"pivots_cached\": {cached_pivots}}},\n  \
         \"eviction\": {{\"solve\": {{\"fifo_hit_rate\": {solve_fifo:.4}, \
         \"clock_hit_rate\": {solve_clock:.4}, \"delta\": {sed:.4}}}, \
         \"decode\": {{\"fifo_hit_rate\": {decode_fifo:.4}, \
         \"clock_hit_rate\": {decode_clock:.4}, \"delta\": {ded:.4}}}}},\n  \
         \"surrogate\": {surrogate_block},\n  \
         \"maximin\": {{\"seeds\": {mm_seeds}, \
         \"plain_seesaw_amplitude\": {plain_amplitude:.4}, \
         \"plain_equilibrium_error\": {plain_err:.4}, \
         \"shared_equilibrium_error\": {shared_err:.4}}}{huge_block}\n}}\n",
        tree_nodes = expr.len(),
        speedup = interp_ms / compiled_ms.max(1e-12),
        nodes_per_pass = interp_nodes / u64::from(reps),
        ccp = ccs.hits + ccs.misses,
        cch = ccs.hits,
        ccm = ccs.misses,
        ccr = rate(ccs.hits, ccs.misses),
        dcp = dcs.hits + dcs.misses,
        dch = dcs.hits,
        dcr = rate(dcs.hits, dcs.misses),
        dc_speedup = dc_ref_ms / dc_memo_ms.max(1e-12),
        scp = scs.hits + scs.misses,
        sch = scs.hits,
        scr = rate(scs.hits, scs.misses),
        sed = solve_clock - solve_fifo,
        ded = decode_clock - decode_fifo,
    );
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}:\n{json}");
}

criterion_group!(benches, bench_scaling, bench_solve_cache);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--json-out") {
        let path = args.get(i + 1).cloned().unwrap_or_else(|| "BENCH_scaling.json".into());
        write_bench_json(
            &path,
            args.iter().any(|a| a == "--reduced"),
            args.iter().any(|a| a == "--huge"),
        );
        return;
    }
    benches();
}
