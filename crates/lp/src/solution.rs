//! Solver output types.

/// Termination status of a simplex solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The iteration limit was exhausted before convergence.
    IterationLimit,
}

/// Result of an LP solve.
///
/// `x`, `duals` and `reduced_costs` are only meaningful when
/// `status == LpStatus::Optimal`; they are returned empty otherwise.
///
/// Dual sign convention: `duals[i]` is the sensitivity `∂objective/∂rhs_i`
/// *in the original optimization sense*. For a minimization problem a
/// binding `≥` row therefore has `duals[i] ≥ 0` and a binding `≤` row has
/// `duals[i] ≤ 0`.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Objective value in the original sense (meaningful only if optimal).
    pub objective: f64,
    /// Primal values of the structural variables.
    pub x: Vec<f64>,
    /// One dual multiplier per constraint row.
    pub duals: Vec<f64>,
    /// Reduced cost of each structural variable (original sense).
    pub reduced_costs: Vec<f64>,
    /// Total simplex pivots across both phases.
    pub iterations: usize,
    /// Pivots spent in phase 1 (finding a feasible basis); `0` when the
    /// initial slack basis was already feasible. Phase-2 pivots are
    /// `iterations - phase1_iterations`.
    pub phase1_iterations: usize,
}

impl LpSolution {
    /// `true` iff the solve proved optimality.
    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }

    pub(crate) fn non_optimal(
        status: LpStatus,
        iterations: usize,
        phase1_iterations: usize,
    ) -> Self {
        LpSolution {
            status,
            objective: f64::NAN,
            x: Vec::new(),
            duals: Vec::new(),
            reduced_costs: Vec::new(),
            iterations,
            phase1_iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_optimal_is_empty() {
        let s = LpSolution::non_optimal(LpStatus::Infeasible, 7, 4);
        assert!(!s.is_optimal());
        assert!(s.objective.is_nan());
        assert!(s.x.is_empty());
        assert_eq!(s.iterations, 7);
        assert_eq!(s.phase1_iterations, 4);
    }
}
