//! Nested-sequential (CST) baseline.
//!
//! The legacy scheme from the paper's taxonomy (§III, category NSQ/CST):
//! a plain upper-level GA whose fitness function *solves the lower level
//! from scratch* with an inner GA for every single upper-level
//! candidate. This is the "very time consuming" nested structure both
//! co-evolutionary algorithms try to break; it is included as an extra
//! comparator for the ablation benches (its reactions are near-rational,
//! so its gaps are small, but it burns the lower-level budget orders of
//! magnitude faster than CARBON).

use bico_bcpop::{evaluate_pair, BcpopInstance, Relaxation, RelaxationSolver};
use bico_ea::{
    binary::{random_bits, shuffle_mutation, two_point_crossover},
    cache::SolveCache,
    real::{polynomial_mutation, sbx_crossover, RealOpsConfig},
    rng::seed_stream,
    select::{tournament, Direction},
    stats::Trace,
};
use bico_obs::{elapsed_micros, timer_if, Event, Level, NullObserver, RunObserver};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Nested-sequential parameters.
#[derive(Debug, Clone)]
pub struct NestedConfig {
    /// Upper-level population size.
    pub ul_pop_size: usize,
    /// Upper-level evaluation budget.
    pub ul_evaluations: u64,
    /// SBX probability.
    pub ul_crossover_prob: f64,
    /// Polynomial-mutation probability per gene.
    pub ul_mutation_prob: f64,
    /// Real-operator configuration.
    pub ul_real_ops: RealOpsConfig,
    /// Inner (lower-level) GA population size.
    pub ll_pop_size: usize,
    /// Inner GA generations per upper-level evaluation.
    pub ll_gens_per_eval: usize,
    /// Total lower-level evaluation budget (inner GA evaluations).
    pub ll_evaluations: u64,
    /// Capacity of the lower-level solve cache (`0` = off); memoizes the
    /// per-pricing relaxation used for the %-gap. Results are
    /// bit-identical either way (see [`bico_ea::SolveCache`]).
    pub ll_cache_capacity: usize,
}

impl Default for NestedConfig {
    fn default() -> Self {
        NestedConfig {
            ul_pop_size: 20,
            ul_evaluations: 2_000,
            ul_crossover_prob: 0.85,
            ul_mutation_prob: 0.01,
            ul_real_ops: RealOpsConfig::default(),
            ll_pop_size: 20,
            ll_gens_per_eval: 10,
            ll_evaluations: 400_000,
            ll_cache_capacity: 0,
        }
    }
}

/// Result of a nested-sequential run.
#[derive(Debug, Clone)]
pub struct NestedResult {
    /// Best pricing found.
    pub best_pricing: Vec<f64>,
    /// Its lower-level reaction (from the inner GA).
    pub best_reaction: Vec<bool>,
    /// Upper-level revenue of the best pair.
    pub best_ul_value: f64,
    /// %-gap of the best pair.
    pub best_gap: f64,
    /// Convergence trace.
    pub trace: Trace,
    /// Upper-level evaluations consumed.
    pub ul_evals_used: u64,
    /// Lower-level evaluations consumed (note how fast this explodes).
    pub ll_evals_used: u64,
}

/// The nested-sequential solver.
pub struct NestedSequential<'a> {
    inst: &'a BcpopInstance,
    cfg: NestedConfig,
    relaxer: RelaxationSolver,
}

impl<'a> NestedSequential<'a> {
    /// Bind to an instance.
    pub fn new(inst: &'a BcpopInstance, cfg: NestedConfig) -> Self {
        NestedSequential { relaxer: RelaxationSolver::new(inst), inst, cfg }
    }

    /// Run to budget exhaustion; deterministic per seed.
    pub fn run(&self, seed: u64) -> NestedResult {
        self.run_observed(seed, &NullObserver)
    }

    /// [`run`](Self::run) with an observer attached; attaching any
    /// observer leaves the result bit-identical.
    pub fn run_observed<O: RunObserver + ?Sized>(&self, seed: u64, obs: &O) -> NestedResult {
        let cfg = &self.cfg;
        let inst = self.inst;
        let (lo, hi) = inst.price_bounds();
        let nl = inst.num_own();
        let mut rng = SmallRng::seed_from_u64(seed_stream(seed, 2));

        let mut pop: Vec<Vec<f64>> = (0..cfg.ul_pop_size)
            .map(|_| (0..nl).map(|j| rng.random_range(lo[j]..=hi[j])).collect())
            .collect();
        let mut ul_evals = 0u64;
        let mut ll_evals = 0u64;
        let mut trace = Trace::new();
        let mut best: Option<(Vec<f64>, Vec<bool>, f64, f64)> = None;
        let mut generation = 0usize;

        if obs.enabled() {
            obs.observe(&Event::RunStart { algo: "nested", seed });
            obs.observe(&Event::PhaseChange { phase: "search" });
        }

        let cache: SolveCache<Relaxation> = SolveCache::new(cfg.ll_cache_capacity);
        // Evictions already reported in earlier CacheProbe events.
        let mut ev_emitted = 0u64;
        let inner_cost = (cfg.ll_pop_size * cfg.ll_gens_per_eval) as u64;
        loop {
            if obs.enabled() {
                obs.observe(&Event::GenerationStart { generation: generation as u64 });
            }
            let mut fits = Vec::with_capacity(pop.len());
            let mut gen_ll_evals = 0u64;
            let mut gen_solves = 0u64;
            let mut gen_pivots = 0u64;
            let mut gen_hits = 0u64;
            let mut gen_misses = 0u64;
            let mut gen_ll_micros = 0u64;
            let mut gen_ul_micros = 0u64;
            let mut gen_solve_micros = 0u64;
            for prices in &pop {
                if ul_evals + 1 > cfg.ul_evaluations
                    || ll_evals + inner_cost > cfg.ll_evaluations
                {
                    break;
                }
                let t_ll = timer_if(obs.enabled());
                let (reaction, inner_evals) = self.solve_lower(prices, &mut rng);
                gen_ll_micros += elapsed_micros(t_ll);
                ll_evals += inner_evals;
                gen_ll_evals += inner_evals;
                ul_evals += 1;
                let t_solve = timer_if(obs.enabled());
                let (relax, hit) = if cache.is_enabled() {
                    let key = SolveCache::<Relaxation>::key_of(prices);
                    match cache.get(&key) {
                        Some(r) => (Some(r), true),
                        None => {
                            let r = self.relaxer.solve(&inst.costs_for(prices));
                            if let Some(r) = &r {
                                cache.insert(&key, r.clone());
                            }
                            (r, false)
                        }
                    }
                } else {
                    (self.relaxer.solve(&inst.costs_for(prices)), false)
                };
                gen_solve_micros += elapsed_micros(t_solve);
                if hit {
                    gen_hits += 1;
                } else {
                    gen_misses += 1;
                }
                let t_ul = timer_if(obs.enabled());
                let (f, gap) = match relax {
                    Some(r) => {
                        gen_solves += 1;
                        // A hit spends no pivots: only actual solves count.
                        if !hit {
                            gen_pivots += r.pivots;
                        }
                        let ev = evaluate_pair(inst, prices, &reaction, r.lower_bound);
                        (ev.ul_value, ev.gap)
                    }
                    None => (0.0, f64::INFINITY),
                };
                gen_ul_micros += elapsed_micros(t_ul);
                fits.push(f);
                let better = best.as_ref().is_none_or(|(_, _, bf, _)| f > *bf);
                if better && gap.is_finite() {
                    best = Some((prices.clone(), reaction, f, gap));
                }
            }
            if obs.enabled() && !fits.is_empty() {
                obs.observe(&Event::Evaluation {
                    level: Level::Upper,
                    count: fits.len() as u64,
                    gp_nodes: 0,
                    micros: gen_ul_micros,
                });
                obs.observe(&Event::Evaluation {
                    level: Level::Lower,
                    count: gen_ll_evals,
                    gp_nodes: 0,
                    micros: gen_ll_micros,
                });
                obs.observe(&Event::LowerLevelSolve {
                    solves: gen_solves,
                    pivots: gen_pivots,
                    micros: gen_solve_micros,
                });
                if cache.is_enabled() {
                    let s = cache.stats();
                    obs.observe(&Event::CacheProbe {
                        hits: gen_hits,
                        misses: gen_misses,
                        evictions: s.evictions - ev_emitted,
                        entries: s.entries as u64,
                    });
                    ev_emitted = s.evictions;
                }
            }
            if fits.len() < pop.len() {
                // Budget ran out mid-generation: the partial batch is
                // reported above, but it is not a completed generation.
                break;
            }
            let (bf, bg) = best
                .as_ref()
                .map_or((f64::NEG_INFINITY, f64::INFINITY), |(_, _, f, g)| (*f, *g));
            trace.record(generation, ul_evals + ll_evals, bf, bg);
            if obs.enabled() {
                obs.observe(&Event::GenerationEnd {
                    generation: generation as u64,
                    evaluations: ul_evals + ll_evals,
                    ul_best: bf,
                    gap_best: bg,
                });
            }
            generation += 1;

            // Breed the upper level.
            let mut next = Vec::with_capacity(pop.len());
            while next.len() < pop.len() {
                let i = tournament(&fits, 2, Direction::Maximize, &mut rng);
                let j = tournament(&fits, 2, Direction::Maximize, &mut rng);
                let (mut c1, mut c2) = if rng.random::<f64>() < cfg.ul_crossover_prob {
                    sbx_crossover(&pop[i], &pop[j], &lo, &hi, &cfg.ul_real_ops, &mut rng)
                } else {
                    (pop[i].clone(), pop[j].clone())
                };
                polynomial_mutation(
                    &mut c1,
                    &lo,
                    &hi,
                    cfg.ul_mutation_prob,
                    &cfg.ul_real_ops,
                    &mut rng,
                );
                polynomial_mutation(
                    &mut c2,
                    &lo,
                    &hi,
                    cfg.ul_mutation_prob,
                    &cfg.ul_real_ops,
                    &mut rng,
                );
                next.push(c1);
                if next.len() < pop.len() {
                    next.push(c2);
                }
            }
            pop = next;
        }

        if obs.enabled() {
            obs.observe(&Event::RunComplete {
                generations: generation as u64,
                ul_evaluations: ul_evals,
                ll_evaluations: ll_evals,
                best_value: best.as_ref().map_or(0.0, |(_, _, f, _)| *f),
                best_gap: best.as_ref().map_or(f64::INFINITY, |(_, _, _, g)| *g),
            });
        }
        match best {
            Some((prices, reaction, f, gap)) => NestedResult {
                best_pricing: prices,
                best_reaction: reaction,
                best_ul_value: f,
                best_gap: gap,
                trace,
                ul_evals_used: ul_evals,
                ll_evals_used: ll_evals,
            },
            None => NestedResult {
                best_pricing: vec![0.0; nl],
                best_reaction: vec![false; inst.num_bundles()],
                best_ul_value: 0.0,
                best_gap: f64::INFINITY,
                trace,
                ul_evals_used: ul_evals,
                ll_evals_used: ll_evals,
            },
        }
    }

    /// Inner GA: minimize the customer's cost for fixed prices. Returns
    /// the best covering reaction and the evaluations consumed.
    fn solve_lower<R: Rng + ?Sized>(&self, prices: &[f64], rng: &mut R) -> (Vec<bool>, u64) {
        let inst = self.inst;
        let cfg = &self.cfg;
        let m = inst.num_bundles();
        let costs = inst.costs_for(prices);
        let cost_of = |y: &[bool]| -> f64 {
            if inst.is_covering(y) {
                bico_bcpop::ll_cost(&costs, y)
            } else {
                f64::INFINITY
            }
        };
        let mut pop: Vec<Vec<bool>> = (0..cfg.ll_pop_size)
            .map(|_| {
                let mut y = random_bits(m, 0.5, rng);
                crate::cobra::repair(inst, &mut y, rng);
                y
            })
            .collect();
        let mut evals = 0u64;
        let mut best: (Vec<bool>, f64) = (pop[0].clone(), f64::INFINITY);
        for _ in 0..cfg.ll_gens_per_eval {
            let fits: Vec<f64> = pop.iter().map(|y| cost_of(y)).collect();
            evals += pop.len() as u64;
            for (y, &f) in pop.iter().zip(&fits) {
                if f < best.1 {
                    best = (y.clone(), f);
                }
            }
            let mut next = Vec::with_capacity(pop.len());
            next.push(best.0.clone()); // elitism
            while next.len() < pop.len() {
                let i = tournament(&fits, 2, Direction::Minimize, rng);
                let j = tournament(&fits, 2, Direction::Minimize, rng);
                let (mut c1, mut c2) = two_point_crossover(&pop[i], &pop[j], rng);
                shuffle_mutation(&mut c1, 1.0 / m as f64, rng);
                shuffle_mutation(&mut c2, 1.0 / m as f64, rng);
                crate::cobra::repair(inst, &mut c1, rng);
                crate::cobra::repair(inst, &mut c2, rng);
                next.push(c1);
                if next.len() < pop.len() {
                    next.push(c2);
                }
            }
            pop = next;
        }
        (best.0, evals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bico_bcpop::{generate, GeneratorConfig};

    #[test]
    fn nested_run_finds_feasible_pair() {
        let inst = generate(
            &GeneratorConfig { num_bundles: 25, num_services: 3, ..Default::default() },
            13,
        );
        let cfg = NestedConfig {
            ul_pop_size: 6,
            ul_evaluations: 30,
            ll_pop_size: 8,
            ll_gens_per_eval: 4,
            ll_evaluations: 10_000,
            ..Default::default()
        };
        let r = NestedSequential::new(&inst, cfg).run(1);
        assert!(r.best_gap.is_finite());
        assert!(inst.is_covering(&r.best_reaction));
        assert!(r.ul_evals_used <= 30);
        // The nested scheme burns LL budget fast: ~32 LL evals per UL eval.
        assert!(r.ll_evals_used >= 20 * r.ul_evals_used);
    }

    #[test]
    fn solve_cache_leaves_results_bit_identical() {
        let inst = generate(
            &GeneratorConfig { num_bundles: 20, num_services: 3, ..Default::default() },
            14,
        );
        let mut cfg = NestedConfig {
            ul_pop_size: 4,
            ul_evaluations: 12,
            ll_pop_size: 6,
            ll_gens_per_eval: 3,
            ll_evaluations: 10_000,
            ..Default::default()
        };
        assert_eq!(cfg.ll_cache_capacity, 0, "cache defaults to off");
        let cold = NestedSequential::new(&inst, cfg.clone()).run(2);
        cfg.ll_cache_capacity = 256;
        let cached = NestedSequential::new(&inst, cfg).run(2);
        assert_eq!(cold.best_pricing, cached.best_pricing);
        assert_eq!(cold.best_reaction, cached.best_reaction);
        assert_eq!(cold.best_ul_value.to_bits(), cached.best_ul_value.to_bits());
        assert_eq!(cold.best_gap.to_bits(), cached.best_gap.to_bits());
        assert_eq!(cold.trace.points(), cached.trace.points());
    }

    #[test]
    fn nested_is_deterministic() {
        let inst = generate(
            &GeneratorConfig { num_bundles: 20, num_services: 3, ..Default::default() },
            14,
        );
        let cfg = NestedConfig {
            ul_pop_size: 4,
            ul_evaluations: 12,
            ll_pop_size: 6,
            ll_gens_per_eval: 3,
            ll_evaluations: 10_000,
            ..Default::default()
        };
        let a = NestedSequential::new(&inst, cfg.clone()).run(2);
        let b = NestedSequential::new(&inst, cfg).run(2);
        assert_eq!(a.best_pricing, b.best_pricing);
        assert_eq!(a.best_gap, b.best_gap);
    }
}
