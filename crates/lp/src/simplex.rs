//! Bounded-variable two-phase dense tableau simplex.
//!
//! Internal column layout: `[0, n)` structural variables, `[n, n+m)` slack
//! variables (coefficient `+1`, bounds encode the row relation), and
//! `[n+m, n+2m)` artificial variables (coefficient `±1` so the initial
//! basic values are non-negative).
//!
//! Phase 1 minimizes the artificial sum from the all-artificial basis;
//! phase 2 minimizes the (sign-adjusted) user objective. Nonbasic
//! variables rest at one of their finite bounds; the ratio test handles
//! bound flips of the entering variable as a third leaving case.

use crate::problem::{LpProblem, Relation, Sense};
use crate::solution::{BasisSnapshot, LpSolution, LpStatus, VarStatus};
use crate::sparse::{self, SparseMode, SparsePrepared};

/// Minimum pivot magnitude accepted when crashing a warm basis into the
/// tableau (matches the drive-out threshold used after phase 1).
const CRASH_PIVOT_TOL: f64 = 1e-7;

/// Lane width of the chunked pricing sweep. Eight `f64` lanes fill two
/// AVX2 registers (or four NEON ones); the multiply and per-chunk max
/// below are shaped so LLVM autovectorizes them at this width.
const PRICE_LANES: usize = 8;

/// Tuning knobs for the simplex loop.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard cap on total pivots across both phases.
    pub max_iterations: usize,
    /// Reduced-cost tolerance for entering-variable selection.
    pub opt_tol: f64,
    /// Pivot-magnitude tolerance in the ratio test.
    pub pivot_tol: f64,
    /// Phase-1 residual (scaled) above which the model is declared
    /// infeasible.
    pub feas_tol: f64,
    /// Number of consecutive non-improving pivots before switching to
    /// Bland's rule (anti-cycling).
    pub bland_after: usize,
    /// Which simplex implementation to use (dense tableau vs sparse
    /// revised); see [`SparseMode`].
    pub sparse: SparseMode,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 50_000,
            opt_tol: 1e-9,
            pivot_tol: 1e-9,
            feas_tol: 1e-7,
            bland_after: 64,
            sparse: SparseMode::Auto,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stat {
    Basic,
    AtLower,
    AtUpper,
}

enum PhaseOutcome {
    Optimal,
    Unbounded,
    IterationLimit,
}

#[derive(Debug, Clone)]
pub(crate) struct Tableau {
    m: usize,
    n_struct: usize,
    n_total: usize,
    /// `m × n_total`, row-major.
    t: Vec<f64>,
    basis: Vec<usize>,
    stat: Vec<Stat>,
    xval: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Reduced-cost row for the current phase objective.
    d: Vec<f64>,
    /// Current phase cost vector.
    cost: Vec<f64>,
    iterations: usize,
    opts: SimplexOptions,
}

impl Tableau {
    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.t[i * self.n_total + j]
    }

    fn compute_reduced_costs(&mut self) {
        self.d.copy_from_slice(&self.cost);
        for i in 0..self.m {
            let cb = self.cost[self.basis[i]];
            if cb != 0.0 {
                let row = &self.t[i * self.n_total..(i + 1) * self.n_total];
                for (dj, &tij) in self.d.iter_mut().zip(row) {
                    *dj -= cb * tij;
                }
            }
        }
    }

    fn phase_objective(&self) -> f64 {
        self.cost.iter().zip(&self.xval).map(|(c, x)| c * x).sum()
    }

    /// Gaussian pivot at `(r, q)`: row-reduce the tableau and the
    /// reduced-cost row so column `q` becomes the `r`-th unit vector.
    fn pivot(&mut self, r: usize, q: usize) {
        let n = self.n_total;
        let piv = self.t[r * n + q];
        debug_assert!(piv.abs() > 1e-12, "pivot too small: {piv}");
        let inv = 1.0 / piv;
        for v in &mut self.t[r * n..(r + 1) * n] {
            *v *= inv;
        }
        self.t[r * n + q] = 1.0;
        // Split the buffer so we can read the pivot row while mutating others.
        let (head, rest) = self.t.split_at_mut(r * n);
        let (prow, tail) = rest.split_at_mut(n);
        for chunk in head.chunks_exact_mut(n) {
            let f = chunk[q];
            if f != 0.0 {
                for (v, &p) in chunk.iter_mut().zip(prow.iter()) {
                    *v -= f * p;
                }
                chunk[q] = 0.0;
            }
        }
        for chunk in tail.chunks_exact_mut(n) {
            let f = chunk[q];
            if f != 0.0 {
                for (v, &p) in chunk.iter_mut().zip(prow.iter()) {
                    *v -= f * p;
                }
                chunk[q] = 0.0;
            }
        }
        let f = self.d[q];
        if f != 0.0 {
            for (v, &p) in self.d.iter_mut().zip(prow.iter()) {
                *v -= f * p;
            }
            self.d[q] = 0.0;
        }
    }

    /// Pricing weight of column `j`: `viol_j = w_j · d_j` with `w = −1`
    /// at lower bound, `+1` at upper, and `0` for columns that may not
    /// enter (basic, fixed, disallowed artificial). Multiplying by `±1.0`
    /// is an exact IEEE sign flip, so the chunked sweep in `run_phase`
    /// computes bit-identical violations to the branchy scalar form.
    #[inline]
    fn price_weight(&self, j: usize, allow_artificial: bool, art_start: usize) -> f64 {
        if self.lower[j] == self.upper[j] || (!allow_artificial && j >= art_start) {
            return 0.0;
        }
        match self.stat[j] {
            Stat::Basic => 0.0,
            Stat::AtLower => -1.0,
            Stat::AtUpper => 1.0,
        }
    }

    /// `allow_artificial`: whether artificial columns may enter (phase 1).
    fn run_phase(&mut self, allow_artificial: bool) -> PhaseOutcome {
        let tol = self.opts.opt_tol;
        let art_start = self.n_struct + self.m;
        let mut last_obj = self.phase_objective();
        let mut stall = 0usize;
        let mut bland = false;

        // Weight vector for the chunked pricing sweep, maintained
        // incrementally as statuses change (two scalar writes per pivot).
        let mut w = vec![0.0f64; self.n_total];
        for (j, wj) in w.iter_mut().enumerate() {
            *wj = self.price_weight(j, allow_artificial, art_start);
        }
        let mut viol = vec![0.0f64; self.n_total];
        // Entering column q, gathered once per iteration so the ratio test
        // and primal update run over a contiguous slice instead of
        // repeating the strided `at(i, q)` index arithmetic.
        let mut colq = vec![0.0f64; self.m];

        loop {
            if self.iterations >= self.opts.max_iterations {
                return PhaseOutcome::IterationLimit;
            }
            // --- entering variable ---
            let entering: Option<(usize, f64)> = if bland {
                // Bland's rule: first violating column (anti-cycling).
                let mut found = None;
                for (j, (&wj, &dj)) in w.iter().zip(&self.d).enumerate() {
                    if wj != 0.0 && wj * dj > tol {
                        found = Some((j, wj * dj));
                        break;
                    }
                }
                found
            } else {
                // Chunked Dantzig sweep: one autovectorizable multiply,
                // then a per-chunk max screens out lanes that cannot beat
                // the incumbent; only winning chunks pay the scalar
                // first-wins argmax, which preserves the exact entering
                // choice of the original branchy loop.
                for ((v, &wj), &dj) in viol.iter_mut().zip(&w).zip(&self.d) {
                    *v = wj * dj;
                }
                let mut best: Option<(usize, f64)> = None;
                let mut base = 0usize;
                for chunk in viol.chunks(PRICE_LANES) {
                    let mut mx = f64::NEG_INFINITY;
                    for &v in chunk {
                        if v > mx {
                            mx = v;
                        }
                    }
                    let screen = match best {
                        Some((_, b)) => mx > b,
                        None => mx > tol,
                    };
                    if screen {
                        for (k, &v) in chunk.iter().enumerate() {
                            if v > tol {
                                match best {
                                    Some((_, b)) if b >= v => {}
                                    _ => best = Some((base + k, v)),
                                }
                            }
                        }
                    }
                    base += chunk.len();
                }
                best
            };
            let Some((q, _)) = entering else {
                return PhaseOutcome::Optimal;
            };
            let dir: f64 = if self.stat[q] == Stat::AtLower { 1.0 } else { -1.0 };

            // Gather column q (hoisted out of the ratio test and update).
            let mut idx = q;
            for c in colq.iter_mut() {
                *c = self.t[idx];
                idx += self.n_total;
            }

            // --- ratio test ---
            // Leaving cases: a basic variable hits one of its bounds, or the
            // entering variable flips to its opposite bound.
            let mut theta = self.upper[q] - self.lower[q]; // bound-flip limit
            let mut leave: Option<(usize, bool)> = None; // (row, hits_upper)
            let mut leave_pivot = 0.0f64;
            for (i, &a) in colq.iter().enumerate() {
                if a.abs() <= self.opts.pivot_tol {
                    continue;
                }
                let bi = self.basis[i];
                let change = -dir * a; // d x_bi / d theta
                let (lim, hits_upper) = if change < 0.0 {
                    ((self.xval[bi] - self.lower[bi]) / -change, false)
                } else {
                    ((self.upper[bi] - self.xval[bi]) / change, true)
                };
                if !lim.is_finite() {
                    continue;
                }
                let lim = lim.max(0.0);
                let take = match leave {
                    None => lim < theta,
                    Some((r_prev, _)) => {
                        if lim < theta - 1e-10 {
                            true
                        } else if lim < theta + 1e-10 {
                            if bland {
                                // Bland: smallest basis index among ties.
                                self.basis[i] < self.basis[r_prev]
                            } else {
                                // Stability: largest pivot magnitude among ties.
                                a.abs() > leave_pivot
                            }
                        } else {
                            false
                        }
                    }
                };
                if take {
                    theta = lim.min(theta);
                    leave = Some((i, hits_upper));
                    leave_pivot = a.abs();
                }
            }
            if !theta.is_finite() {
                return PhaseOutcome::Unbounded;
            }
            let theta = theta.max(0.0);

            // --- update primal values ---
            self.xval[q] += dir * theta;
            if theta != 0.0 {
                for (i, &a) in colq.iter().enumerate() {
                    if a != 0.0 {
                        self.xval[self.basis[i]] -= dir * theta * a;
                    }
                }
            }

            match leave {
                None => {
                    // Bound flip: entering variable traversed to its other bound.
                    self.stat[q] = match self.stat[q] {
                        Stat::AtLower => {
                            self.xval[q] = self.upper[q];
                            Stat::AtUpper
                        }
                        Stat::AtUpper => {
                            self.xval[q] = self.lower[q];
                            Stat::AtLower
                        }
                        Stat::Basic => unreachable!(),
                    };
                    w[q] = -w[q];
                }
                Some((r, hits_upper)) => {
                    let leaving = self.basis[r];
                    if hits_upper {
                        self.stat[leaving] = Stat::AtUpper;
                        self.xval[leaving] = self.upper[leaving];
                    } else {
                        self.stat[leaving] = Stat::AtLower;
                        self.xval[leaving] = self.lower[leaving];
                    }
                    self.pivot(r, q);
                    self.basis[r] = q;
                    self.stat[q] = Stat::Basic;
                    w[leaving] = self.price_weight(leaving, allow_artificial, art_start);
                    w[q] = 0.0;
                }
            }

            self.iterations += 1;

            // --- anti-cycling bookkeeping ---
            let obj = self.phase_objective();
            if obj < last_obj - 1e-10 {
                stall = 0;
            } else {
                stall += 1;
                if stall > self.opts.bland_after {
                    bland = true;
                }
            }
            last_obj = obj;
        }
    }
}

/// The tableau after phase 1 (feasible basis found, artificials pinned),
/// ready to run phase 2 for any objective over the same constraint system.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one long-lived value per PreparedLp
pub(crate) enum Prepared {
    /// Phase 1 succeeded; `tab` holds a primal-feasible basis.
    Ready {
        tab: Tableau,
        /// Per-row sign adjustment applied during assembly (`±1`),
        /// needed to recover duals from the artificial columns.
        signs: Vec<f64>,
        phase1_iterations: usize,
    },
    /// Phase 1 proved infeasibility or hit the iteration limit; every
    /// objective yields the same non-optimal status.
    Stopped { status: LpStatus, iterations: usize, phase1_iterations: usize },
    /// The sparse revised-simplex path was selected; see [`SparsePrepared`].
    Sparse(SparsePrepared),
}

/// Assemble the initial tableau: nonbasic variables at finite bounds,
/// all-artificial starting basis, rows sign-adjusted so the artificial
/// values are non-negative. Returns the tableau and the per-row signs.
#[allow(clippy::needless_range_loop)] // tableau assembly indexes parallel arrays
fn assemble(p: &LpProblem, opts: &SimplexOptions) -> (Tableau, Vec<f64>) {
    let n = p.n;
    let m = p.rows.len();
    let n_total = n + 2 * m;

    // --- assemble bounds and initial nonbasic placement ---
    let mut lower = Vec::with_capacity(n_total);
    let mut upper = Vec::with_capacity(n_total);
    lower.extend_from_slice(&p.lower);
    upper.extend_from_slice(&p.upper);
    for rel in &p.relations {
        match rel {
            Relation::Le => {
                lower.push(0.0);
                upper.push(f64::INFINITY);
            }
            Relation::Ge => {
                lower.push(f64::NEG_INFINITY);
                upper.push(0.0);
            }
            Relation::Eq => {
                lower.push(0.0);
                upper.push(0.0);
            }
        }
    }
    // Artificial bounds start at [0, ∞); tightened to [0, 0] for phase 2.
    for _ in 0..m {
        lower.push(0.0);
        upper.push(f64::INFINITY);
    }

    let mut stat = Vec::with_capacity(n_total);
    let mut xval = Vec::with_capacity(n_total);
    for j in 0..n + m {
        if lower[j].is_finite() {
            stat.push(Stat::AtLower);
            xval.push(lower[j]);
        } else {
            stat.push(Stat::AtUpper);
            xval.push(upper[j]);
        }
    }
    for _ in 0..m {
        stat.push(Stat::Basic); // artificials form the initial basis
        xval.push(0.0); // filled below
    }

    // --- residuals and sign-adjusted artificial columns ---
    let mut resid = p.rhs.clone();
    for (i, row) in p.rows.iter().enumerate() {
        for &(j, a) in row {
            resid[i] -= a * xval[j];
        }
        // slack j = n + i currently has value 0, nothing to subtract
    }

    let mut t = vec![0.0f64; m * n_total];
    let signs: Vec<f64> = resid.iter().map(|&r| if r >= 0.0 { 1.0 } else { -1.0 }).collect();
    for (i, row) in p.rows.iter().enumerate() {
        let sign = signs[i];
        let trow = &mut t[i * n_total..(i + 1) * n_total];
        for &(j, a) in row {
            trow[j] += sign * a;
        }
        trow[n + i] += sign; // slack coefficient +1, sign-adjusted
        trow[n + m + i] = 1.0; // artificial: sign * (sign * e_i) = e_i
        xval[n + m + i] = resid[i].abs();
    }

    let mut basis = Vec::with_capacity(m);
    for i in 0..m {
        basis.push(n + m + i);
    }

    let tab = Tableau {
        m,
        n_struct: n,
        n_total,
        t,
        basis,
        stat,
        xval,
        lower,
        upper,
        d: vec![0.0; n_total],
        cost: vec![0.0; n_total],
        iterations: 0,
        opts: opts.clone(),
    };
    (tab, signs)
}

/// Phase 1 on whichever implementation [`SparseMode`] selects for this
/// problem. A sparse attempt that hits numerical trouble (singular
/// refactorization) silently falls back to the dense tableau, so callers
/// always get a usable prepared state.
pub(crate) fn prepare(p: &LpProblem, opts: &SimplexOptions) -> Prepared {
    if sparse::selected(p, opts) {
        if let Some(sp) = sparse::prepare(p, opts) {
            return Prepared::Sparse(sp);
        }
    }
    prepare_dense(p, opts)
}

/// Run phase 1 from the all-artificial basis, pin artificials to zero and
/// drive basic ones out of the basis where possible. The result is a
/// primal-feasible tableau that [`finish`] can run phase 2 on for *any*
/// objective — phase 1 never looks at the cost vector, so the prepared
/// state is objective-independent.
pub(crate) fn prepare_dense(p: &LpProblem, opts: &SimplexOptions) -> Prepared {
    let n = p.n;
    let m = p.rows.len();
    let n_total = n + 2 * m;
    let (mut tab, signs) = assemble(p, opts);

    // --- phase 1 ---
    for j in n + m..n_total {
        tab.cost[j] = 1.0;
    }
    tab.compute_reduced_costs();
    let scale = 1.0 + p.rhs.iter().fold(0.0f64, |a, b| a.max(b.abs()));
    match tab.run_phase(true) {
        PhaseOutcome::Optimal => {}
        PhaseOutcome::Unbounded => {
            // Phase 1 objective is bounded below by 0; cannot happen.
            unreachable!("phase 1 cannot be unbounded");
        }
        PhaseOutcome::IterationLimit => {
            return Prepared::Stopped {
                status: LpStatus::IterationLimit,
                iterations: tab.iterations,
                phase1_iterations: tab.iterations,
            };
        }
    }
    let phase1_iterations = tab.iterations;
    if tab.phase_objective() > opts.feas_tol * scale {
        return Prepared::Stopped {
            status: LpStatus::Infeasible,
            iterations: tab.iterations,
            phase1_iterations,
        };
    }

    // --- pin artificials to zero and drive basic ones out where possible ---
    for j in n + m..n_total {
        tab.lower[j] = 0.0;
        tab.upper[j] = 0.0;
    }
    for r in 0..m {
        if tab.basis[r] < n + m {
            continue;
        }
        let mut pivot_col = None;
        // Row slice instead of per-column `at(r, j)` index arithmetic.
        let row = &tab.t[r * n_total..r * n_total + n + m];
        for (j, a) in row.iter().enumerate() {
            if tab.stat[j] != Stat::Basic && a.abs() > 1e-7 {
                pivot_col = Some(j);
                break;
            }
        }
        if let Some(q) = pivot_col {
            // Degenerate pivot: the artificial is at value 0, so no primal
            // values change.
            let leaving = tab.basis[r];
            tab.stat[leaving] = Stat::AtLower;
            tab.xval[leaving] = 0.0;
            tab.pivot(r, q);
            tab.basis[r] = q;
            tab.stat[q] = Stat::Basic;
        }
        // Otherwise the row is redundant; the artificial stays basic at 0
        // with bounds [0, 0], which is harmless.
    }

    Prepared::Ready { tab, signs, phase1_iterations }
}

/// Run phase 2 for `obj` on a primal-feasible tableau and extract the
/// solution. `tab.iterations` must already count the pivots spent reaching
/// feasibility (phase 1 or a warm-basis crash) so the global iteration cap
/// spans both stages.
pub(crate) fn finish(
    mut tab: Tableau,
    signs: &[f64],
    phase1_iterations: usize,
    sense: Sense,
    obj: &[f64],
) -> LpSolution {
    let n = tab.n_struct;
    let m = tab.m;

    // --- phase 2 ---
    let obj_sign = match sense {
        Sense::Min => 1.0,
        Sense::Max => -1.0,
    };
    tab.cost.iter_mut().for_each(|c| *c = 0.0);
    for (c, &o) in tab.cost[..n].iter_mut().zip(obj) {
        *c = obj_sign * o;
    }
    tab.compute_reduced_costs();
    match tab.run_phase(false) {
        PhaseOutcome::Optimal => {}
        PhaseOutcome::Unbounded => {
            return LpSolution::non_optimal(
                LpStatus::Unbounded,
                tab.iterations,
                phase1_iterations,
            );
        }
        PhaseOutcome::IterationLimit => {
            return LpSolution::non_optimal(
                LpStatus::IterationLimit,
                tab.iterations,
                phase1_iterations,
            );
        }
    }

    // --- extraction ---
    let mut x = tab.xval[..n].to_vec();
    // Snap tiny bound violations introduced by floating-point drift.
    // (Structural bounds in the tableau are exactly the problem's.)
    for (j, v) in x.iter_mut().enumerate() {
        if *v < tab.lower[j] {
            *v = tab.lower[j];
        }
        if *v > tab.upper[j] {
            *v = tab.upper[j];
        }
    }
    let objective: f64 = obj.iter().zip(&x).map(|(c, v)| c * v).sum();

    // Duals from the artificial columns: B^{-1} e_i = sign_i · T[:, art_i],
    // hence y_i = −sign_i · d[art_i] under the internal (min) costs.
    let duals: Vec<f64> =
        (0..m).zip(signs).map(|(i, &s)| obj_sign * (-s * tab.d[n + m + i])).collect();
    let reduced_costs: Vec<f64> = (0..n).map(|j| obj_sign * tab.d[j]).collect();

    let statuses: Vec<VarStatus> = tab.stat[..n + m]
        .iter()
        .map(|s| match s {
            Stat::Basic => VarStatus::Basic,
            Stat::AtLower => VarStatus::AtLower,
            Stat::AtUpper => VarStatus::AtUpper,
        })
        .collect();

    LpSolution {
        status: LpStatus::Optimal,
        objective,
        x,
        duals,
        reduced_costs,
        iterations: tab.iterations,
        phase1_iterations,
        basis: Some(BasisSnapshot::from_statuses(statuses)),
    }
}

/// Cold solve on whichever implementation [`SparseMode`] selects.
pub(crate) fn solve(p: &LpProblem, opts: &SimplexOptions) -> LpSolution {
    match prepare(p, opts) {
        Prepared::Stopped { status, iterations, phase1_iterations } => {
            LpSolution::non_optimal(status, iterations, phase1_iterations)
        }
        Prepared::Ready { tab, signs, phase1_iterations } => {
            finish(tab, &signs, phase1_iterations, p.sense, &p.obj)
        }
        Prepared::Sparse(sp) => sp.solve_objective(p.sense, &p.obj),
    }
}

/// Cold solve pinned to the dense tableau regardless of `opts.sparse`.
/// This is the differential reference path and the fallback target when
/// the sparse path hits numerical trouble mid-solve.
pub(crate) fn solve_dense(p: &LpProblem, opts: &SimplexOptions) -> LpSolution {
    match prepare_dense(p, opts) {
        Prepared::Stopped { status, iterations, phase1_iterations } => {
            LpSolution::non_optimal(status, iterations, phase1_iterations)
        }
        Prepared::Ready { tab, signs, phase1_iterations } => {
            finish(tab, &signs, phase1_iterations, p.sense, &p.obj)
        }
        Prepared::Sparse(_) => unreachable!("prepare_dense never selects sparse"),
    }
}

/// Warm-started solve: crash `snapshot`'s basis into a fresh tableau and
/// go straight to phase 2, falling back to the cold two-phase path when
/// the snapshot does not fit the problem or its basis is numerically
/// singular or primal-infeasible here. Basis snapshots are a dense-path
/// artifact; when the sparse path is selected a cold sparse solve beats
/// a dense warm start at these sizes, so the snapshot is ignored.
pub(crate) fn solve_with_basis(
    p: &LpProblem,
    opts: &SimplexOptions,
    snapshot: &BasisSnapshot,
) -> LpSolution {
    if sparse::selected(p, opts) {
        return solve(p, opts);
    }
    match try_warm(p, opts, snapshot) {
        Some(sol) => sol,
        None => solve(p, opts),
    }
}

/// Attempt the warm start; `None` means "use the cold path".
fn try_warm(
    p: &LpProblem,
    opts: &SimplexOptions,
    snapshot: &BasisSnapshot,
) -> Option<LpSolution> {
    let n = p.n;
    let m = p.rows.len();
    if snapshot.len() != n + m || snapshot.num_basic() > m {
        return None;
    }
    let (mut tab, signs) = assemble(p, opts);
    let scale = 1.0 + p.rhs.iter().fold(0.0f64, |a, b| a.max(b.abs()));

    // The tableau has no explicit rhs column (primal values live in
    // `xval`), so track one through the crash pivots to recover the basic
    // values of the warm vertex afterwards.
    let mut rhs: Vec<f64> = (0..m).map(|i| signs[i] * p.rhs[i]).collect();

    // Crash: pivot each snapshot-basic column into a row still held by an
    // artificial, choosing the largest available pivot for stability. A
    // pivot below CRASH_PIVOT_TOL means the snapshot's basis is (near-)
    // singular for this problem's data — bail out to the cold path.
    for q in 0..n + m {
        if snapshot.statuses()[q] != VarStatus::Basic {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for r in 0..m {
            if tab.basis[r] < n + m {
                continue; // row already taken by an earlier crash pivot
            }
            let a = tab.at(r, q).abs();
            if best.is_none_or(|(_, b)| a > b) {
                best = Some((r, a));
            }
        }
        let (r, mag) = best?;
        if mag <= CRASH_PIVOT_TOL {
            return None;
        }
        // Strided column gather with incremental index arithmetic.
        let mut col = vec![0.0f64; m];
        let mut idx = q;
        for c in col.iter_mut() {
            *c = tab.t[idx];
            idx += tab.n_total;
        }
        let leaving = tab.basis[r];
        tab.stat[leaving] = Stat::AtLower;
        tab.xval[leaving] = 0.0;
        tab.pivot(r, q);
        tab.basis[r] = q;
        tab.stat[q] = Stat::Basic;
        tab.iterations += 1;
        rhs[r] /= col[r];
        for i in 0..m {
            if i != r && col[i] != 0.0 {
                rhs[i] -= col[i] * rhs[r];
            }
        }
    }

    // Rest the nonbasic columns on the bounds the snapshot recorded; a
    // nonbasic placement on an infinite bound cannot be restored.
    for j in 0..n + m {
        match snapshot.statuses()[j] {
            VarStatus::Basic => {}
            VarStatus::AtLower => {
                if !tab.lower[j].is_finite() {
                    return None;
                }
                tab.stat[j] = Stat::AtLower;
                tab.xval[j] = tab.lower[j];
            }
            VarStatus::AtUpper => {
                if !tab.upper[j].is_finite() {
                    return None;
                }
                tab.stat[j] = Stat::AtUpper;
                tab.xval[j] = tab.upper[j];
            }
        }
    }

    // Pin artificials to zero exactly as the cold path does after phase 1.
    // Rows the snapshot leaves uncrashed keep a basic artificial, which
    // must then check out at value ≈ 0 below (redundant row).
    for j in n + m..n + 2 * m {
        tab.lower[j] = 0.0;
        tab.upper[j] = 0.0;
        if tab.stat[j] != Stat::Basic {
            tab.xval[j] = 0.0;
        }
    }

    // Basic values: x_B = B⁻¹ b − Σ_{nonbasic j} (B⁻¹ A)_j · x_j.
    for (r, &b) in rhs.iter().enumerate().take(m) {
        let mut v = b;
        let row = &tab.t[r * tab.n_total..r * tab.n_total + n + m];
        for (j, &a) in row.iter().enumerate() {
            if tab.stat[j] != Stat::Basic && tab.xval[j] != 0.0 {
                v -= a * tab.xval[j];
            }
        }
        tab.xval[tab.basis[r]] = v;
    }

    // Primal feasibility of the restored vertex; on violation the warm
    // basis is simply not feasible for this problem — cold-solve instead.
    let tol = opts.feas_tol * scale;
    for r in 0..m {
        let jb = tab.basis[r];
        if tab.xval[jb] < tab.lower[jb] - tol || tab.xval[jb] > tab.upper[jb] + tol {
            return None;
        }
    }

    let crash_iterations = tab.iterations;
    Some(finish(tab, &signs, crash_iterations, p.sense, &p.obj))
}

#[cfg(test)]
mod tests {
    use crate::{check_certificate, LpProblem, LpStatus, Relation, SimplexOptions};

    fn assert_opt(p: &LpProblem, want_obj: f64, want_x: Option<&[f64]>) {
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal, "expected optimal, got {:?}", sol.status);
        assert!(
            (sol.objective - want_obj).abs() < 1e-6,
            "objective {} != expected {want_obj}",
            sol.objective
        );
        if let Some(xs) = want_x {
            for (j, (&got, &want)) in sol.x.iter().zip(xs).enumerate() {
                assert!((got - want).abs() < 1e-6, "x[{j}] = {got}, expected {want}");
            }
        }
        check_certificate(p, &sol, 1e-6).unwrap();
    }

    #[test]
    fn trivial_unconstrained_min_at_lower_bounds() {
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[1.0, 1.0]);
        assert_opt(&p, 0.0, Some(&[0.0, 0.0]));
    }

    #[test]
    fn textbook_max_le() {
        // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Hillier-Lieberman)
        let mut p = LpProblem::maximize(2);
        p.set_objective(&[3.0, 5.0]);
        p.add_constraint_dense(&[1.0, 0.0], Relation::Le, 4.0);
        p.add_constraint_dense(&[0.0, 2.0], Relation::Le, 12.0);
        p.add_constraint_dense(&[3.0, 2.0], Relation::Le, 18.0);
        assert_opt(&p, 36.0, Some(&[2.0, 6.0]));
    }

    #[test]
    fn min_with_ge_rows_needs_phase1() {
        // min 2x + 3y  s.t. x + y >= 4, x + 2y >= 6, x,y >= 0 -> (2, 2), obj 10
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[2.0, 3.0]);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, 4.0);
        p.add_constraint_dense(&[1.0, 2.0], Relation::Ge, 6.0);
        assert_opt(&p, 10.0, Some(&[2.0, 2.0]));
    }

    #[test]
    fn equality_constraint() {
        // min x + y s.t. x + y = 5, x <= 2 -> obj 5 with x in [0,2]
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[1.0, 1.0]);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Eq, 5.0);
        p.add_constraint_dense(&[1.0, 0.0], Relation::Le, 2.0);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 5.0).abs() < 1e-8);
        assert!((sol.x[0] + sol.x[1] - 5.0).abs() < 1e-8);
        check_certificate(&p, &sol, 1e-6).unwrap();
    }

    #[test]
    fn upper_bound_binds() {
        // min -x, 0 <= x <= 7 (no rows): x -> 7
        let mut p = LpProblem::minimize(1);
        p.set_objective(&[-1.0]);
        p.set_bounds(0, 0.0, 7.0);
        assert_opt(&p, -7.0, Some(&[7.0]));
    }

    #[test]
    fn bound_flip_path() {
        // max x + y, x + y <= 1.5, 0<=x<=1, 0<=y<=1: needs mixing basis/bounds
        let mut p = LpProblem::maximize(2);
        p.set_objective(&[1.0, 1.0]);
        p.set_bounds(0, 0.0, 1.0);
        p.set_bounds(1, 0.0, 1.0);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Le, 1.5);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 1.5).abs() < 1e-8);
        check_certificate(&p, &sol, 1e-6).unwrap();
    }

    #[test]
    fn detects_infeasible() {
        // x >= 5 and x <= 2
        let mut p = LpProblem::minimize(1);
        p.add_constraint_dense(&[1.0], Relation::Ge, 5.0);
        p.add_constraint_dense(&[1.0], Relation::Le, 2.0);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min -x, x >= 0 unbounded above
        let mut p = LpProblem::minimize(1);
        p.set_objective(&[-1.0]);
        p.add_constraint_dense(&[1.0], Relation::Ge, 1.0);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_handled_by_sign_adjustment() {
        // min x  s.t. -x <= -3  (i.e. x >= 3)
        let mut p = LpProblem::minimize(1);
        p.set_objective(&[1.0]);
        p.add_constraint_dense(&[-1.0], Relation::Le, -3.0);
        assert_opt(&p, 3.0, Some(&[3.0]));
    }

    #[test]
    fn negative_lower_bounds() {
        // min x + y, x >= -5, y in [-2, 2], x + y >= -4 -> x=-2? :
        // minimize sum with row x+y >= -4: optimum x+y = -4, obj -4
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[1.0, 1.0]);
        p.set_bounds(0, -5.0, f64::INFINITY);
        p.set_bounds(1, -2.0, 2.0);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, -4.0);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 4.0).abs() < 1e-8);
        check_certificate(&p, &sol, 1e-6).unwrap();
    }

    #[test]
    fn duals_on_min_ge_are_nonnegative() {
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[2.0, 3.0]);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, 4.0);
        p.add_constraint_dense(&[1.0, 2.0], Relation::Ge, 6.0);
        let sol = p.solve().unwrap();
        for (i, &y) in sol.duals.iter().enumerate() {
            assert!(y >= -1e-9, "dual {i} = {y} should be >= 0 for min/>= rows");
        }
        // Both rows bind at (2,2); duals solve y1 + y2 = 2, y1 + 2 y2 = 3.
        assert!((sol.duals[0] - 1.0).abs() < 1e-6);
        assert!((sol.duals[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dual_is_shadow_price() {
        // Perturb a binding rhs and compare with the dual prediction.
        let build = |rhs: f64| {
            let mut p = LpProblem::minimize(2);
            p.set_objective(&[2.0, 3.0]);
            p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, rhs);
            p.add_constraint_dense(&[1.0, 2.0], Relation::Ge, 6.0);
            p
        };
        let base = build(4.0).solve().unwrap();
        let bumped = build(4.01).solve().unwrap();
        let predicted = base.objective + 0.01 * base.duals[0];
        assert!((bumped.objective - predicted).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate construction (Beale-like): many ties at 0.
        let mut p = LpProblem::minimize(4);
        p.set_objective(&[-0.75, 150.0, -0.02, 6.0]);
        p.add_constraint_dense(&[0.25, -60.0, -0.04, 9.0], Relation::Le, 0.0);
        p.add_constraint_dense(&[0.5, -90.0, -0.02, 3.0], Relation::Le, 0.0);
        p.add_constraint_dense(&[0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 0.05).abs() < 1e-6);
        check_certificate(&p, &sol, 1e-6).unwrap();
    }

    #[test]
    fn redundant_row_leaves_artificial_basic() {
        // Duplicate equality rows create a redundant row after phase 1.
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[1.0, 2.0]);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Eq, 3.0);
        p.add_constraint_dense(&[2.0, 2.0], Relation::Eq, 6.0);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 3.0).abs() < 1e-8);
        assert!((sol.x[0] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn fixed_variable_is_respected() {
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[1.0, 1.0]);
        p.set_bounds(0, 2.0, 2.0);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, 5.0);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
        assert!((sol.objective - 5.0).abs() < 1e-8);
    }

    #[test]
    fn iteration_limit_is_reported() {
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[2.0, 3.0]);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, 4.0);
        let opts = SimplexOptions { max_iterations: 0, ..Default::default() };
        let sol = p.solve_with(&opts).unwrap();
        assert_eq!(sol.status, LpStatus::IterationLimit);
    }

    #[test]
    fn zero_rows_zero_vars() {
        let p = LpProblem::minimize(0);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, 0.0);
        assert!(sol.x.is_empty());
    }

    #[test]
    fn covering_relaxation_shape() {
        // A small covering LP: min c x, Qx >= b, 0 <= x <= 1.
        let mut p = LpProblem::minimize(4);
        p.set_objective(&[3.0, 2.0, 4.0, 1.0]);
        for j in 0..4 {
            p.set_bounds(j, 0.0, 1.0);
        }
        p.add_constraint_dense(&[2.0, 1.0, 0.0, 1.0], Relation::Ge, 2.0);
        p.add_constraint_dense(&[0.0, 2.0, 3.0, 1.0], Relation::Ge, 3.0);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        for &v in &sol.x {
            assert!((-1e-9..=1.0 + 1e-9).contains(&v));
        }
        check_certificate(&p, &sol, 1e-6).unwrap();
    }

    #[test]
    fn pivot_counts_split_by_phase() {
        // A ≥ row makes the initial slack basis infeasible, so phase 1
        // must pivot at least once; phase-2 pivots are the remainder.
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[2.0, 3.0]);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, 4.0);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(sol.phase1_iterations >= 1, "phase 1 must have pivoted");
        assert!(sol.iterations >= sol.phase1_iterations);
    }

    #[test]
    fn optimal_solution_carries_a_basis_snapshot() {
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[2.0, 3.0]);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, 4.0);
        let sol = p.solve().unwrap();
        let snap = sol.basis.as_ref().expect("optimal solve records a basis");
        assert_eq!(snap.len(), 2 + 1, "n structural + m slack columns");
        assert!(snap.num_basic() >= 1);

        let infeasible = {
            let mut q = LpProblem::minimize(1);
            q.add_constraint_dense(&[1.0], Relation::Ge, 5.0);
            q.add_constraint_dense(&[1.0], Relation::Le, 2.0);
            q.solve().unwrap()
        };
        assert!(infeasible.basis.is_none());
    }

    #[test]
    fn warm_start_from_own_basis_skips_phase_1() {
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[2.0, 3.0]);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, 4.0);
        p.add_constraint_dense(&[1.0, 2.0], Relation::Ge, 6.0);
        let cold = p.solve().unwrap();
        let snap = cold.basis.clone().unwrap();
        let warm = p.solve_with_basis(&SimplexOptions::default(), &snap).unwrap();
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        check_certificate(&p, &warm, 1e-6).unwrap();
        // Re-solving from the optimal vertex needs no phase-2 pivots; the
        // only pivots reported are the basis-crash ones.
        assert_eq!(warm.iterations, warm.phase1_iterations);
        assert_eq!(warm.phase1_iterations, snap.num_basic());
    }

    #[test]
    fn warm_start_on_perturbed_objective_matches_cold() {
        let base = {
            let mut p = LpProblem::minimize(2);
            p.set_objective(&[2.0, 3.0]);
            p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, 4.0);
            p.add_constraint_dense(&[1.0, 2.0], Relation::Ge, 6.0);
            p
        };
        let snap = base.solve().unwrap().basis.unwrap();
        let mut moved = base.clone();
        moved.set_objective(&[5.0, 1.0]); // different optimal vertex
        let warm = moved.solve_with_basis(&SimplexOptions::default(), &snap).unwrap();
        let cold = moved.solve().unwrap();
        assert_eq!(warm.status, cold.status);
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        check_certificate(&moved, &warm, 1e-6).unwrap();
    }

    #[test]
    fn infeasible_warm_basis_falls_back_to_cold_solve() {
        // Snapshot from a loose rhs; tightening the rhs makes that vertex
        // primal-infeasible, so the warm path must detect it and fall back.
        let build = |rhs: f64| {
            let mut p = LpProblem::minimize(2);
            p.set_objective(&[2.0, 3.0]);
            p.set_bounds(0, 0.0, 10.0);
            p.set_bounds(1, 0.0, 10.0);
            p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, rhs);
            p
        };
        let snap = build(4.0).solve().unwrap().basis.unwrap();
        let tight = build(9.0);
        let warm = tight.solve_with_basis(&SimplexOptions::default(), &snap).unwrap();
        let cold = tight.solve().unwrap();
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        check_certificate(&tight, &warm, 1e-6).unwrap();
    }

    #[test]
    fn mismatched_snapshot_shape_falls_back_to_cold_solve() {
        use crate::{BasisSnapshot, VarStatus};
        let mut p = LpProblem::minimize(2);
        p.set_objective(&[2.0, 3.0]);
        p.add_constraint_dense(&[1.0, 1.0], Relation::Ge, 4.0);
        // Wrong length entirely.
        let bogus = BasisSnapshot::from_statuses(vec![VarStatus::Basic; 7]);
        let sol = p.solve_with_basis(&SimplexOptions::default(), &bogus).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 8.0).abs() < 1e-8);
        // Right length but more basics than rows.
        let bogus = BasisSnapshot::from_statuses(vec![VarStatus::Basic; 3]);
        let sol = p.solve_with_basis(&SimplexOptions::default(), &bogus).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 8.0).abs() < 1e-8);
    }

    #[test]
    fn maximization_duals_sign() {
        // max 3x+5y with <= rows: duals should be >= 0 in max sense.
        let mut p = LpProblem::maximize(2);
        p.set_objective(&[3.0, 5.0]);
        p.add_constraint_dense(&[1.0, 0.0], Relation::Le, 4.0);
        p.add_constraint_dense(&[0.0, 2.0], Relation::Le, 12.0);
        p.add_constraint_dense(&[3.0, 2.0], Relation::Le, 18.0);
        let sol = p.solve().unwrap();
        check_certificate(&p, &sol, 1e-6).unwrap();
        for &y in &sol.duals {
            assert!(y >= -1e-9, "max/<= duals must be nonnegative, got {y}");
        }
    }
}
