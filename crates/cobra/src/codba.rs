//! CODBA-style co-evolutionary decomposition baseline.
//!
//! The paper's related work (§III, Chaabani, Bechikh & Ben Said 2015)
//! describes CODBA as "generating from the upper-level solutions many
//! LL populations … evaluate in parallel each sub-population. Each
//! individual of these LL populations mate using crossover with the
//! best archived LL solutions until no more improvement occurs at LL" —
//! and the paper pointedly remarks that this workflow "reduces to a
//! simple nested optimization algorithm". This implementation lets that
//! claim be tested: CODBA's lower-level budget consumption sits between
//! COBRA's and the fully nested baseline's.
//!
//! Per upper-level generation:
//!
//! 1. every pricing `x` spawns a lower-level sub-population seeded from
//!    the shared reaction archive plus random covers;
//! 2. each sub-population evolves by mating its members with the best
//!    archived reactions (two-point crossover + swap mutation + repair)
//!    until `stall_limit` generations pass without improvement;
//! 3. the best reaction found scores `x`, and enters the shared archive.

use bico_bcpop::{evaluate_pair, BcpopInstance, RelaxationSolver};
use bico_ea::{
    archive::Archive,
    binary::{random_bits, shuffle_mutation, two_point_crossover},
    real::{polynomial_mutation, sbx_crossover, RealOpsConfig},
    rng::seed_stream,
    select::{tournament, Direction},
    stats::Trace,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// CODBA parameters.
#[derive(Debug, Clone)]
pub struct CodbaConfig {
    /// Upper-level population size.
    pub ul_pop_size: usize,
    /// Upper-level evaluation budget.
    pub ul_evaluations: u64,
    /// SBX probability.
    pub ul_crossover_prob: f64,
    /// Polynomial-mutation probability per gene.
    pub ul_mutation_prob: f64,
    /// Real-operator configuration.
    pub ul_real_ops: RealOpsConfig,
    /// Size of each lower-level sub-population.
    pub sub_pop_size: usize,
    /// Sub-population generations without improvement before it stops.
    pub stall_limit: usize,
    /// Hard cap on generations per sub-population (safety).
    pub sub_max_gens: usize,
    /// Shared reaction-archive capacity.
    pub archive_size: usize,
    /// Total lower-level evaluation budget.
    pub ll_evaluations: u64,
}

impl Default for CodbaConfig {
    fn default() -> Self {
        CodbaConfig {
            ul_pop_size: 20,
            ul_evaluations: 2_000,
            ul_crossover_prob: 0.85,
            ul_mutation_prob: 0.01,
            ul_real_ops: RealOpsConfig::default(),
            sub_pop_size: 10,
            stall_limit: 3,
            sub_max_gens: 25,
            archive_size: 50,
            ll_evaluations: 200_000,
        }
    }
}

/// Result of a CODBA run.
#[derive(Debug, Clone)]
pub struct CodbaResult {
    /// Best pricing found.
    pub best_pricing: Vec<f64>,
    /// Its best reaction.
    pub best_reaction: Vec<bool>,
    /// Upper-level revenue of the best pair.
    pub best_ul_value: f64,
    /// %-gap of the best pair.
    pub best_gap: f64,
    /// Convergence trace (one point per upper generation).
    pub trace: Trace,
    /// Upper-level evaluations consumed.
    pub ul_evals_used: u64,
    /// Lower-level evaluations consumed.
    pub ll_evals_used: u64,
}

/// The CODBA solver bound to one instance.
pub struct Codba<'a> {
    inst: &'a BcpopInstance,
    cfg: CodbaConfig,
    relaxer: RelaxationSolver,
}

impl<'a> Codba<'a> {
    /// Bind to an instance.
    pub fn new(inst: &'a BcpopInstance, cfg: CodbaConfig) -> Self {
        Codba { relaxer: RelaxationSolver::new(inst), inst, cfg }
    }

    /// Run to budget exhaustion; deterministic per seed.
    pub fn run(&self, seed: u64) -> CodbaResult {
        let cfg = &self.cfg;
        let inst = self.inst;
        let (lo, hi) = inst.price_bounds();
        let nl = inst.num_own();
        let m = inst.num_bundles();
        let mut rng = SmallRng::seed_from_u64(seed_stream(seed, 3));

        let mut pop: Vec<Vec<f64>> = (0..cfg.ul_pop_size)
            .map(|_| (0..nl).map(|j| rng.random_range(lo[j]..=hi[j])).collect())
            .collect();
        // Shared archive of good reactions, ranked by raw cost under the
        // pricing they were found for (a heuristic reuse pool).
        let mut reaction_archive: Archive<Vec<bool>> =
            Archive::new(cfg.archive_size, Direction::Minimize);

        let mut ul_evals = 0u64;
        let mut ll_evals = 0u64;
        let mut trace = Trace::new();
        let mut best: Option<(Vec<f64>, Vec<bool>, f64, f64)> = None;
        let mut generation = 0usize;

        'outer: loop {
            let mut fits = Vec::with_capacity(pop.len());
            for prices in &pop {
                if ul_evals + 1 > cfg.ul_evaluations
                    || ll_evals + (cfg.sub_pop_size * 2) as u64 > cfg.ll_evaluations
                {
                    break 'outer;
                }
                let costs = inst.costs_for(prices);
                let (reaction, used) =
                    self.evolve_subpopulation(&costs, &reaction_archive, &mut rng);
                ll_evals += used;
                ul_evals += 1;
                let cost: f64 = bico_bcpop::ll_cost(&costs, &reaction);
                reaction_archive.push(reaction.clone(), cost);

                let relax = self.relaxer.solve(&costs);
                let (f, gap) = match relax {
                    Some(r) => {
                        let ev = evaluate_pair(inst, prices, &reaction, r.lower_bound);
                        (ev.ul_value, ev.gap)
                    }
                    None => (0.0, f64::INFINITY),
                };
                fits.push(f);
                let better = best.as_ref().is_none_or(|(_, _, bf, _)| f > *bf);
                if better && gap.is_finite() {
                    best = Some((prices.clone(), reaction, f, gap));
                }
            }
            if fits.len() < pop.len() {
                break;
            }
            let (bf, bg) = best
                .as_ref()
                .map_or((f64::NEG_INFINITY, f64::INFINITY), |(_, _, f, g)| (*f, *g));
            trace.record(generation, ul_evals + ll_evals, bf, bg);
            generation += 1;

            let mut next = Vec::with_capacity(pop.len());
            while next.len() < pop.len() {
                let i = tournament(&fits, 2, Direction::Maximize, &mut rng);
                let j = tournament(&fits, 2, Direction::Maximize, &mut rng);
                let (mut c1, mut c2) = if rng.random::<f64>() < cfg.ul_crossover_prob {
                    sbx_crossover(&pop[i], &pop[j], &lo, &hi, &cfg.ul_real_ops, &mut rng)
                } else {
                    (pop[i].clone(), pop[j].clone())
                };
                polynomial_mutation(
                    &mut c1,
                    &lo,
                    &hi,
                    cfg.ul_mutation_prob,
                    &cfg.ul_real_ops,
                    &mut rng,
                );
                polynomial_mutation(
                    &mut c2,
                    &lo,
                    &hi,
                    cfg.ul_mutation_prob,
                    &cfg.ul_real_ops,
                    &mut rng,
                );
                next.push(c1);
                if next.len() < pop.len() {
                    next.push(c2);
                }
            }
            pop = next;
        }

        match best {
            Some((prices, reaction, f, gap)) => CodbaResult {
                best_pricing: prices,
                best_reaction: reaction,
                best_ul_value: f,
                best_gap: gap,
                trace,
                ul_evals_used: ul_evals,
                ll_evals_used: ll_evals,
            },
            None => CodbaResult {
                best_pricing: vec![0.0; nl],
                best_reaction: vec![false; m],
                best_ul_value: 0.0,
                best_gap: f64::INFINITY,
                trace,
                ul_evals_used: ul_evals,
                ll_evals_used: ll_evals,
            },
        }
    }

    /// Evolve one lower-level sub-population for a fixed cost vector:
    /// seed from the shared archive + random covers, mate with the best
    /// archived reactions, stop after `stall_limit` non-improving
    /// generations. Returns the best covering reaction and the number of
    /// evaluations consumed.
    fn evolve_subpopulation<R: Rng + ?Sized>(
        &self,
        costs: &[f64],
        archive: &Archive<Vec<bool>>,
        rng: &mut R,
    ) -> (Vec<bool>, u64) {
        let inst = self.inst;
        let cfg = &self.cfg;
        let m = inst.num_bundles();
        let cost_of = |y: &[bool]| -> f64 {
            if inst.is_covering(y) {
                bico_bcpop::ll_cost(costs, y)
            } else {
                f64::INFINITY
            }
        };

        // Seed: archived elites first, random repaired covers after.
        let mut pop: Vec<Vec<bool>> = archive.top(cfg.sub_pop_size / 2);
        while pop.len() < cfg.sub_pop_size {
            let mut y = random_bits(m, 0.4, rng);
            crate::cobra::repair(inst, &mut y, rng);
            pop.push(y);
        }

        let mut evals = 0u64;
        let mut best: (Vec<bool>, f64) = (pop[0].clone(), f64::INFINITY);
        let mut stall = 0usize;
        for _ in 0..cfg.sub_max_gens {
            let fits: Vec<f64> = pop.iter().map(|y| cost_of(y)).collect();
            evals += pop.len() as u64;
            let mut improved = false;
            for (y, &f) in pop.iter().zip(&fits) {
                if f < best.1 {
                    best = (y.clone(), f);
                    improved = true;
                }
            }
            if improved {
                stall = 0;
            } else {
                stall += 1;
                if stall >= cfg.stall_limit {
                    break;
                }
            }
            // CODBA's signature move: mate members with the best archived
            // (or best-so-far) reaction.
            let mate = archive.best().map(|(y, _)| y.clone()).unwrap_or_else(|| best.0.clone());
            let mut next = Vec::with_capacity(pop.len());
            next.push(best.0.clone()); // elitism
            while next.len() < pop.len() {
                let i = tournament(&fits, 2, Direction::Minimize, rng);
                let (mut c1, _) = two_point_crossover(&pop[i], &mate, rng);
                shuffle_mutation(&mut c1, 1.0 / m as f64, rng);
                crate::cobra::repair(inst, &mut c1, rng);
                next.push(c1);
            }
            pop = next;
        }
        (best.0, evals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bico_bcpop::{generate, GeneratorConfig};

    fn instance(seed: u64) -> BcpopInstance {
        generate(
            &GeneratorConfig { num_bundles: 30, num_services: 4, ..Default::default() },
            seed,
        )
    }

    fn cfg() -> CodbaConfig {
        CodbaConfig {
            ul_pop_size: 6,
            ul_evaluations: 30,
            sub_pop_size: 8,
            stall_limit: 2,
            sub_max_gens: 10,
            archive_size: 20,
            ll_evaluations: 20_000,
            ..Default::default()
        }
    }

    #[test]
    fn codba_runs_and_extracts_feasible_pair() {
        let inst = instance(41);
        let r = Codba::new(&inst, cfg()).run(1);
        assert!(r.best_gap.is_finite());
        assert!(inst.is_covering(&r.best_reaction));
        assert!(r.ul_evals_used <= 30);
        assert!(!r.trace.points().is_empty());
    }

    #[test]
    fn codba_is_deterministic() {
        let inst = instance(42);
        let a = Codba::new(&inst, cfg()).run(7);
        let b = Codba::new(&inst, cfg()).run(7);
        assert_eq!(a.best_pricing, b.best_pricing);
        assert_eq!(a.best_gap, b.best_gap);
        assert_eq!(a.ll_evals_used, b.ll_evals_used);
    }

    #[test]
    fn codba_ll_consumption_is_nested_like() {
        // The paper's critique: CODBA is effectively nested — it burns
        // many LL evaluations per UL evaluation.
        let inst = instance(43);
        let r = Codba::new(&inst, cfg()).run(2);
        let ratio = r.ll_evals_used as f64 / r.ul_evals_used.max(1) as f64;
        assert!(ratio >= 8.0, "LL/UL ratio {ratio} too small for a nested-style scheme");
    }

    #[test]
    fn stall_limit_stops_subpopulations_early() {
        let inst = instance(44);
        let eager = CodbaConfig { stall_limit: 1, sub_max_gens: 50, ..cfg() };
        let patient = CodbaConfig { stall_limit: 10, sub_max_gens: 50, ..cfg() };
        let r_eager = Codba::new(&inst, eager).run(3);
        let r_patient = Codba::new(&inst, patient).run(3);
        assert!(
            r_eager.ll_evals_used < r_patient.ll_evals_used,
            "{} !< {}",
            r_eager.ll_evals_used,
            r_patient.ll_evals_used
        );
    }
}
