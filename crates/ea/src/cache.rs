//! Thread-safe, capacity-bounded memoization caches.
//!
//! Bi-level co-evolution re-computes the same pure functions many times:
//! elites are re-injected every generation, archives replay their
//! members against new opponents, and improvement phases sweep stored
//! pairs. Three memo layers exploit that — lower-level relaxation solves
//! keyed by pricing bits ([`SolveCache`]), GP compilation keyed by tree
//! structure (`bico_core::GpCompileCache`), and full lower-level decodes
//! keyed by (tree × pricing × mode) (`bico_core::DecodeCache`). All
//! three share the generic machinery here ([`ShardedCache`]) instead of
//! triplicating shard/FIFO/stats logic.
//!
//! Keys are exact (bit patterns, canonical structural encodings), so a
//! hit returns the very value a fresh computation would have produced:
//! cached and uncached runs are bit-identical, and `tests/determinism.rs`
//! asserts this differentially for every layer.
//!
//! The map is sharded (16 shards, each its own mutex) so rayon workers
//! probing concurrently rarely contend, and bounded by a per-shard FIFO
//! eviction queue so memory stays capped on long runs. Eviction order
//! does not affect results — evicting merely turns a future hit into a
//! recomputation of the identical value. Individual keys can be
//! [pinned](ShardedCache::pin) to survive eviction storms (frequency-aware
//! admission for elite sets), and the queue can optionally run
//! [clock / second-chance](EvictionPolicy::Clock) instead of plain FIFO
//! so *hot* rows — probed since their last trip to the queue front —
//! survive churn without being pinned explicitly.

use std::borrow::Borrow;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const NUM_SHARDS: usize = 16;

/// Replacement policy of the per-shard eviction queue.
///
/// Policy choice cannot affect results — keys are exact and values pure,
/// so evicting a different entry merely changes which future probe
/// recomputes an identical value. It only moves the hit rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Plain insertion-order FIFO (the default): probes never write
    /// eviction state, so the hit path stays read-mostly.
    #[default]
    Fifo,
    /// Clock / second-chance: every hit sets a reference bit on the
    /// entry; when the eviction scan reaches a referenced entry it
    /// clears the bit and re-queues it instead of dropping it. An entry
    /// probed at least once per lap of its shard's queue is never
    /// evicted, so hot rows survive insertion storms that would flush
    /// them under FIFO — without the caller having to know the hot set
    /// up front the way [`pin`](ShardedCache::pin) requires.
    Clock,
}

impl EvictionPolicy {
    /// Stable lower-case name (used in docs and CLI output).
    pub fn as_str(self) -> &'static str {
        match self {
            EvictionPolicy::Fifo => "fifo",
            EvictionPolicy::Clock => "clock",
        }
    }
}

impl std::str::FromStr for EvictionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fifo" => Ok(EvictionPolicy::Fifo),
            "clock" | "second-chance" | "second_chance" => Ok(EvictionPolicy::Clock),
            other => Err(format!("unknown eviction policy '{other}' (expected fifo or clock)")),
        }
    }
}

/// Monotonic counters describing cache traffic so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Probes observed (every [`get`](ShardedCache::get) call, plus one
    /// per memoized lookup when the cache is disabled).
    pub probes: u64,
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that had to compute (including every probe when disabled).
    pub misses: u64,
    /// Values actually stored (a concurrent duplicate insert counts once).
    pub insertions: u64,
    /// Values dropped to respect the capacity bound.
    pub evictions: u64,
    /// Entries resident right now.
    pub entries: usize,
}

impl CacheStats {
    /// Assert the traffic identity `hits + misses == probes`.
    ///
    /// The counters are independent relaxed atomics, so the identity is
    /// guaranteed only at quiescent points — after every in-flight probe
    /// has finished — which is when snapshots are meaningful anyway.
    /// Tests call this after joining workers; a failure means a probe
    /// path forgot to account its outcome.
    pub fn assert_consistent(&self) {
        assert_eq!(
            self.hits + self.misses,
            self.probes,
            "cache stats inconsistent: hits {} + misses {} != probes {}",
            self.hits,
            self.misses,
            self.probes
        );
    }
}

/// FNV-1a as a [`Hasher`], used for shard routing. Hand-rolled rather
/// than `DefaultHasher` so shard assignment (and therefore eviction
/// patterns and perf traces) is deterministic across runs and
/// toolchains. Shard routing can never affect results: eviction only
/// turns a future hit into recomputation of an identical value.
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

#[derive(Debug)]
struct Shard<K, V> {
    /// Resident entries; the `bool` is the clock reference bit, set on
    /// hits under [`EvictionPolicy::Clock`] and never touched under FIFO.
    map: HashMap<K, (V, bool)>,
    /// Insertion order for the eviction scan.
    order: VecDeque<K>,
    /// Keys exempt from eviction until [`ShardedCache::clear_pins`].
    pinned: HashSet<K>,
    capacity: usize,
}

/// A sharded, bounded, thread-safe memoization cache over arbitrary
/// hashable keys. `capacity == 0` disables caching entirely: every probe
/// misses and nothing is stored.
///
/// All methods take `&self`; share one instance across rayon workers by
/// reference. [`SolveCache`] (pricing-bit keys), `GpCompileCache`
/// (structural keys), and `DecodeCache` (tree × pricing keys) are thin
/// wrappers over this type.
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    capacity: usize,
    policy: EvictionPolicy,
    probes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// Create a cache holding at most `capacity` entries in total
    /// (`0` = disabled), evicting in plain FIFO order. Pinned entries
    /// may exceed the bound; see [`pin`](Self::pin).
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, EvictionPolicy::default())
    }

    /// [`ShardedCache::new`] with an explicit [`EvictionPolicy`].
    pub fn with_policy(capacity: usize, policy: EvictionPolicy) -> Self {
        // Distribute the bound across shards so the global entry count
        // can never exceed `capacity` even under concurrent inserts.
        // Small capacities use fewer shards so no shard ends up with a
        // zero bound (which would silently drop every insert routed to it).
        let active = capacity.clamp(1, NUM_SHARDS);
        let shards = (0..active)
            .map(|i| {
                let cap = capacity / active + usize::from(i < capacity % active);
                Mutex::new(Shard {
                    map: HashMap::new(),
                    order: VecDeque::new(),
                    pinned: HashSet::new(),
                    capacity: cap,
                })
            })
            .collect();
        ShardedCache {
            shards,
            capacity,
            policy,
            probes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache that never stores anything (capacity 0).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// `true` iff the cache can store entries.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Entries resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).sum()
    }

    /// `true` iff no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys currently pinned across all shards.
    pub fn pinned_len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").pinned.len()).sum()
    }

    /// Exempt `key` from FIFO eviction until [`clear_pins`](Self::clear_pins).
    ///
    /// Frequency-aware admission: callers pin the keys they *know* will
    /// recur (the current elite set) so a storm of one-off insertions
    /// cannot flush them. A pinned key need not be resident yet — the pin
    /// applies whenever it is. While every resident entry of a shard is
    /// pinned, inserts are admitted past the bound, so the capacity is
    /// soft by at most the pinned count; callers keep pin sets small.
    /// No-op when disabled.
    pub fn pin(&self, key: K) {
        if self.capacity == 0 {
            return;
        }
        let shard = &self.shards[self.shard_of(&key)];
        shard.lock().expect("cache shard poisoned").pinned.insert(key);
    }

    /// Drop every pin (entries stay resident, but become evictable).
    pub fn clear_pins(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").pinned.clear();
        }
    }

    /// Probe for `key`; counts a probe plus a hit or a miss.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.probes.fetch_add(1, Ordering::Relaxed);
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let shard = &self.shards[self.shard_of(key)];
        let mut guard = shard.lock().expect("cache shard poisoned");
        match guard.map.get_mut(key) {
            Some(entry) => {
                if self.policy == EvictionPolicy::Clock {
                    entry.1 = true;
                }
                let v = entry.0.clone();
                drop(guard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                drop(guard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store `value` under `key` unless already present (first writer
    /// wins; a concurrent duplicate insert is a no-op, so counters and
    /// the eviction queue stay consistent). Evicts the scan's first
    /// victim of the target shard when it is full: the oldest unpinned
    /// entry under FIFO, the oldest unpinned *unreferenced* entry under
    /// [`EvictionPolicy::Clock`] (referenced entries get their bit
    /// cleared and one more lap). While everything resident is pinned
    /// (or, under clock, still referenced after a bit-clearing lap) the
    /// insert is admitted past the bound. No-op when disabled. Does not
    /// count a probe.
    pub fn insert(&self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        let shard = &self.shards[self.shard_of(&key)];
        let mut guard = shard.lock().expect("cache shard poisoned");
        if guard.capacity == 0 || guard.map.contains_key(&key) {
            return;
        }
        if guard.map.len() >= guard.capacity {
            // Pop the queue front; pinned keys are re-queued (treated as
            // most recently inserted), clock gives referenced keys a
            // second chance, and the first remaining entry is dropped.
            // Two laps bound the scan: a key survives at most one pin
            // re-queue plus one bit-clearing re-queue before the scan
            // either finds a victim or proves everything is exempt.
            let scan_limit = match self.policy {
                EvictionPolicy::Fifo => guard.order.len(),
                EvictionPolicy::Clock => 2 * guard.order.len(),
            };
            let mut scanned = 0;
            while scanned < scan_limit {
                match guard.order.pop_front() {
                    None => break,
                    Some(oldest) => {
                        if guard.pinned.contains(&oldest) {
                            guard.order.push_back(oldest);
                            scanned += 1;
                            continue;
                        }
                        let second_chance = self.policy == EvictionPolicy::Clock
                            && guard
                                .map
                                .get_mut(&oldest)
                                .map(|e| std::mem::replace(&mut e.1, false))
                                .unwrap_or(false);
                        if second_chance {
                            guard.order.push_back(oldest);
                            scanned += 1;
                        } else {
                            guard.map.remove(&oldest);
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            }
        }
        guard.order.push_back(key.clone());
        guard.map.insert(key, (value, false));
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Memoize `compute` under an owned key — for callers that build the
    /// key per probe anyway (e.g. decode-cache keys assembled from tree
    /// and pricing components). Returns the value and whether it was
    /// served from the cache (`true` = hit).
    ///
    /// Note the non-blocking miss path: two workers probing the same new
    /// key may both compute, and the second insert is dropped. That is
    /// deliberate — `compute` is pure, so both results are identical, and
    /// not holding the shard lock during `compute` keeps workers off each
    /// other's critical path.
    pub fn get_or_insert(&self, key: K, compute: impl FnOnce() -> V) -> (V, bool) {
        if self.capacity == 0 {
            self.probes.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return (compute(), false);
        }
        if let Some(v) = self.get(&key) {
            return (v, true);
        }
        let v = compute();
        self.insert(key, v.clone());
        (v, false)
    }

    /// [`get_or_insert`](Self::get_or_insert) with a borrowed key,
    /// converting to an owned key only on the miss path — for callers
    /// that probe with a long-lived borrowed form (e.g. pricing slices).
    pub fn get_or_insert_with<Q>(&self, key: &Q, compute: impl FnOnce() -> V) -> (V, bool)
    where
        K: Borrow<Q> + for<'q> From<&'q Q>,
        Q: Hash + Eq + ?Sized,
    {
        if self.capacity == 0 {
            self.probes.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return (compute(), false);
        }
        if let Some(v) = self.get(key) {
            return (v, true);
        }
        let v = compute();
        self.insert(K::from(key), v.clone());
        (v, false)
    }

    /// Snapshot the traffic counters. At quiescence `hits + misses`
    /// equals `probes` ([`CacheStats::assert_consistent`]).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            probes: self.probes.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// FNV-1a over the key's `Hash` stream, folded onto the active shard
    /// count.
    fn shard_of<Q: Hash + ?Sized>(&self, key: &Q) -> usize {
        let mut h = Fnv1a::default();
        key.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }
}

/// A [`ShardedCache`] keyed by the bit pattern of an `f64` slice — the
/// memo layer for lower-level relaxation solves, where the natural
/// identity of a problem is the exact pricing vector.
///
/// Because the key is the *exact bit pattern* (`f64::to_bits`), a hit
/// returns the very value a fresh solve would have produced; cached and
/// uncached runs are bit-identical.
#[derive(Debug)]
pub struct SolveCache<V> {
    inner: ShardedCache<Box<[u64]>, V>,
}

impl<V: Clone> SolveCache<V> {
    /// Create a cache holding at most `capacity` entries in total
    /// (`0` = disabled), evicting in plain FIFO order.
    pub fn new(capacity: usize) -> Self {
        SolveCache { inner: ShardedCache::new(capacity) }
    }

    /// [`SolveCache::new`] with an explicit [`EvictionPolicy`].
    pub fn with_policy(capacity: usize, policy: EvictionPolicy) -> Self {
        SolveCache { inner: ShardedCache::with_policy(capacity, policy) }
    }

    /// A cache that never stores anything (capacity 0).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// `true` iff the cache can store entries.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_enabled()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Entries resident across all shards.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` iff no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The exact-bit-pattern key of a pricing vector.
    pub fn key_of(values: &[f64]) -> Box<[u64]> {
        values.iter().map(|v| v.to_bits()).collect()
    }

    /// Probe for `key`; counts a probe plus a hit or a miss.
    pub fn get(&self, key: &[u64]) -> Option<V> {
        self.inner.get(key)
    }

    /// Store `value` under `key` unless already present (first writer
    /// wins). See [`ShardedCache::insert`].
    pub fn insert(&self, key: &[u64], value: V) {
        if self.inner.is_enabled() {
            self.inner.insert(key.into(), value);
        }
    }

    /// Exempt `key` from eviction until [`clear_pins`](Self::clear_pins);
    /// see [`ShardedCache::pin`].
    pub fn pin(&self, key: &[u64]) {
        if self.inner.is_enabled() {
            self.inner.pin(key.into());
        }
    }

    /// Drop every pin (entries stay resident, but become evictable).
    pub fn clear_pins(&self) {
        self.inner.clear_pins();
    }

    /// Keys currently pinned.
    pub fn pinned_len(&self) -> usize {
        self.inner.pinned_len()
    }

    /// Memoize `compute` over the bit pattern of `values`. Returns the
    /// value and whether it was served from the cache (`true` = hit).
    pub fn get_or_insert_with(&self, values: &[f64], compute: impl FnOnce() -> V) -> (V, bool) {
        self.inner.get_or_insert_with(&*Self::key_of(values), compute)
    }

    /// Memoize `compute` under a caller-supplied exact key — for values
    /// whose natural identity is not an `f64` slice, such as a GP tree's
    /// canonical structural encoding. Same traffic accounting and
    /// non-blocking miss path as [`get_or_insert_with`](Self::get_or_insert_with).
    pub fn get_or_insert_keyed(&self, key: &[u64], compute: impl FnOnce() -> V) -> (V, bool) {
        self.inner.get_or_insert_with(key, compute)
    }

    /// Snapshot the traffic counters; see [`ShardedCache::stats`].
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_never_stores() {
        let cache: SolveCache<u64> = SolveCache::disabled();
        assert!(!cache.is_enabled());
        let (v, hit) = cache.get_or_insert_with(&[1.0], || 7);
        assert_eq!((v, hit), (7, false));
        let (v, hit) = cache.get_or_insert_with(&[1.0], || 7);
        assert_eq!((v, hit), (7, false));
        let s = cache.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 2);
        assert_eq!(s.probes, 2);
        assert_eq!(s.insertions, 0);
        assert_eq!(s.entries, 0);
        s.assert_consistent();
        assert!(cache.is_empty());
    }

    #[test]
    fn second_probe_hits() {
        let cache: SolveCache<u64> = SolveCache::new(8);
        assert!(cache.is_enabled());
        assert_eq!(cache.capacity(), 8);
        let (_, hit) = cache.get_or_insert_with(&[1.5, -2.5], || 42);
        assert!(!hit);
        let (v, hit) = cache.get_or_insert_with(&[1.5, -2.5], || unreachable!());
        assert!(hit);
        assert_eq!(v, 42);
        let s = cache.stats();
        assert_eq!((s.probes, s.hits, s.misses, s.insertions, s.entries), (2, 1, 1, 1, 1));
        s.assert_consistent();
    }

    #[test]
    fn keys_are_exact_bit_patterns() {
        // 0.0 and -0.0 compare equal as floats but have different bit
        // patterns: they must be distinct cache keys. (Capacity well
        // above the shard count so same-shard keys cannot evict each
        // other.)
        let cache: SolveCache<u64> = SolveCache::new(64);
        cache.get_or_insert_with(&[0.0], || 1);
        let (v, hit) = cache.get_or_insert_with(&[-0.0], || 2);
        assert!(!hit);
        assert_eq!(v, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        // A single-entry cache stresses eviction in whichever shard each
        // key lands: every insert after the first one in a shard evicts.
        let cache: SolveCache<u64> = SolveCache::new(1);
        for i in 0..100u64 {
            cache.get_or_insert_with(&[i as f64], || i);
            assert!(cache.len() <= 1, "capacity exceeded at step {i}");
        }
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.insertions - s.evictions, 1);
        s.assert_consistent();
    }

    #[test]
    fn duplicate_insert_is_a_noop() {
        let cache: SolveCache<u64> = SolveCache::new(8);
        let key = SolveCache::<u64>::key_of(&[3.25]);
        cache.insert(&key, 1);
        cache.insert(&key, 2);
        assert_eq!(cache.get(&key), Some(1), "first writer wins");
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn keyed_api_memoizes_arbitrary_keys() {
        let cache: SolveCache<u64> = SolveCache::new(8);
        let (v, hit) = cache.get_or_insert_keyed(&[1, 2, 3], || 11);
        assert_eq!((v, hit), (11, false));
        let (v, hit) = cache.get_or_insert_keyed(&[1, 2, 3], || unreachable!());
        assert_eq!((v, hit), (11, true));
        // Distinct key lengths are distinct keys.
        let (v, hit) = cache.get_or_insert_keyed(&[1, 2], || 5);
        assert_eq!((v, hit), (5, false));
        let disabled: SolveCache<u64> = SolveCache::disabled();
        let (v, hit) = disabled.get_or_insert_keyed(&[9], || 3);
        assert_eq!((v, hit), (3, false));
        assert!(disabled.is_empty());
    }

    #[test]
    fn stats_probe_identity_holds() {
        let cache: SolveCache<u64> = SolveCache::new(4);
        for i in 0..20u64 {
            cache.get_or_insert_with(&[(i % 5) as f64], || i);
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 20);
        assert_eq!(s.probes, 20);
        s.assert_consistent();
        assert!(s.entries <= 4);
    }

    #[test]
    #[should_panic(expected = "cache stats inconsistent")]
    fn assert_consistent_catches_skew() {
        let skewed = CacheStats { probes: 3, hits: 1, misses: 1, ..CacheStats::default() };
        skewed.assert_consistent();
    }

    #[test]
    fn generic_cache_takes_arbitrary_keys() {
        let cache: ShardedCache<(u32, bool), String> = ShardedCache::new(8);
        let (v, hit) = cache.get_or_insert((7, true), || "a".to_string());
        assert_eq!((v.as_str(), hit), ("a", false));
        let (v, hit) = cache.get_or_insert((7, true), || unreachable!());
        assert_eq!((v.as_str(), hit), ("a", true));
        let (_, hit) = cache.get_or_insert((7, false), || "b".to_string());
        assert!(!hit, "tuple components are part of the key");
        cache.stats().assert_consistent();
    }

    #[test]
    fn pinned_entry_survives_eviction_churn() {
        // Capacity 1 → a single shard, so every key contends with the
        // pinned one. The pin must hold through an overflow storm while
        // unpinned entries churn.
        let cache: SolveCache<u64> = SolveCache::new(1);
        let elite = SolveCache::<u64>::key_of(&[123.456]);
        cache.pin(&elite);
        assert_eq!(cache.pinned_len(), 1);
        cache.insert(&elite, 999);
        for i in 0..50u64 {
            cache.insert(&SolveCache::<u64>::key_of(&[i as f64]), i);
        }
        assert_eq!(cache.get(&elite), Some(999), "pinned entry evicted by churn");
        // The bound is soft by at most the pinned count.
        assert!(cache.len() <= 1 + cache.pinned_len(), "len {} too large", cache.len());
        // Unpinning makes it evictable again.
        cache.clear_pins();
        assert_eq!(cache.pinned_len(), 0);
        for i in 0..50u64 {
            cache.insert(&SolveCache::<u64>::key_of(&[1000.0 + i as f64]), i);
        }
        assert_eq!(cache.get(&elite), None, "unpinned entry should churn out");
        cache.stats().assert_consistent();
    }

    #[test]
    fn pin_before_insert_applies_on_admission() {
        let cache: SolveCache<u64> = SolveCache::new(1);
        let elite = SolveCache::<u64>::key_of(&[999.5]);
        // Pin first, insert later: the pin applies once resident.
        cache.pin(&elite);
        for i in 0..10u64 {
            cache.insert(&SolveCache::<u64>::key_of(&[i as f64]), i);
        }
        cache.insert(&elite, 42);
        for i in 0..10u64 {
            cache.insert(&SolveCache::<u64>::key_of(&[100.0 + i as f64]), i);
        }
        assert_eq!(cache.get(&elite), Some(42));
    }

    /// The churn workload of the clock-vs-FIFO comparison: a small hot
    /// set probed every round (elite re-injection) against a stream of
    /// one-off insertions (exploration), four per round. Returns the hot
    /// hit count — how often a hot row was still resident when probed.
    fn churn_hot_hits(policy: EvictionPolicy) -> u64 {
        let cache: ShardedCache<u64, u64> = ShardedCache::with_policy(32, policy);
        assert_eq!(cache.policy(), policy);
        let hot: Vec<u64> = (0..8).collect();
        for &h in &hot {
            cache.insert(h, h);
        }
        let mut hits = 0;
        let mut cold = 1_000u64;
        for _ in 0..200 {
            for &h in &hot {
                match cache.get(&h) {
                    Some(v) => {
                        assert_eq!(v, h);
                        hits += 1;
                    }
                    None => cache.insert(h, h),
                }
            }
            for _ in 0..4 {
                cache.insert(cold, cold);
                cold += 1;
            }
        }
        cache.stats().assert_consistent();
        hits
    }

    #[test]
    fn clock_keeps_hot_unpinned_rows_alive_through_churn() {
        // Same workload, same capacity, no pins: under FIFO the hot rows
        // age to the queue front and churn out; under clock their
        // per-round probes keep re-arming the reference bit, so they
        // ride out the one-off stream. The margin is the point — clock
        // must not merely tie FIFO.
        let fifo = churn_hot_hits(EvictionPolicy::Fifo);
        let clock = churn_hot_hits(EvictionPolicy::Clock);
        let max = 200 * 8;
        assert!(
            clock > fifo,
            "clock ({clock}/{max}) must beat FIFO ({fifo}/{max}) on a hot-row churn workload"
        );
        assert!(
            clock >= max * 9 / 10,
            "clock should keep nearly every hot probe a hit, got {clock}/{max}"
        );
    }

    #[test]
    fn clock_default_is_fifo_and_eviction_still_bounds() {
        // The default constructor stays FIFO…
        let cache: SolveCache<u64> = SolveCache::new(8);
        assert_eq!(cache.inner.policy(), EvictionPolicy::Fifo);
        // …and a clock cache still respects the capacity bound under a
        // pure insertion storm (no probes → no reference bits → plain
        // FIFO behaviour).
        let clock: SolveCache<u64> = SolveCache::with_policy(1, EvictionPolicy::Clock);
        for i in 0..100u64 {
            clock.insert(&SolveCache::<u64>::key_of(&[i as f64]), i);
            assert!(clock.len() <= 1, "capacity exceeded at step {i}");
        }
        let s = clock.stats();
        assert_eq!(s.insertions - s.evictions, 1);
    }

    #[test]
    fn clock_gives_exactly_one_extra_lap() {
        // Single-shard cache (capacity 1): the lone resident key is hit
        // (bit set); the next insert's scan clears the bit on its first
        // lap and, with no other victim, wraps and evicts the now
        // unreferenced key on its second. Second chance, not
        // immortality.
        let cache: ShardedCache<u64, u64> = ShardedCache::with_policy(1, EvictionPolicy::Clock);
        cache.insert(7, 70);
        assert_eq!(cache.get(&7), Some(70));
        cache.insert(8, 80);
        assert_eq!(cache.get(&7), None, "one unprobed lap must end the second chance");
        assert_eq!(cache.get(&8), Some(80));
        cache.stats().assert_consistent();
    }

    #[test]
    fn clock_respects_pins_over_reference_bits() {
        let cache: ShardedCache<u64, u64> = ShardedCache::with_policy(1, EvictionPolicy::Clock);
        cache.pin(3);
        cache.insert(3, 30);
        for i in 100..150u64 {
            cache.insert(i, i);
        }
        assert_eq!(cache.get(&3), Some(30), "pin must hold without any probes");
        cache.stats().assert_consistent();
    }

    #[test]
    fn disabled_cache_ignores_pins() {
        let cache: SolveCache<u64> = SolveCache::disabled();
        cache.pin(&SolveCache::<u64>::key_of(&[1.0]));
        assert_eq!(cache.pinned_len(), 0);
    }
}
