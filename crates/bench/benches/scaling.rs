//! Rayon scaling of the population-evaluation kernel: the same batch of
//! lower-level evaluations on thread pools of different sizes, plus the
//! lower-level solve cache on a repeated-pricing workload.

use bico_bcpop::{
    generate, greedy_cover, CostPerCoverageScorer, GeneratorConfig, Relaxation,
    RelaxationSolver,
};
use bico_ea::SolveCache;
use criterion::{criterion_group, criterion_main, Criterion};
use rayon::prelude::*;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let inst = generate(&GeneratorConfig::paper_class(250, 10), 42);
    let pricings: Vec<Vec<f64>> =
        (0..32).map(|i| vec![10.0 + i as f64 * 3.0; inst.num_own()]).collect();
    let solver = RelaxationSolver::new(&inst);

    let mut group = c.benchmark_group("rayon_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let pool =
            rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool");
        group.bench_function(format!("eval32_threads_{threads}"), |b| {
            b.iter(|| {
                pool.install(|| {
                    let total: f64 = pricings
                        .par_iter()
                        .map(|prices| {
                            let costs = inst.costs_for(prices);
                            let relax = solver.solve(&costs).unwrap();
                            greedy_cover(
                                &inst,
                                &costs,
                                &mut CostPerCoverageScorer,
                                Some(&relax),
                            )
                            .cost
                        })
                        .sum();
                    black_box(total)
                })
            })
        });
    }
    group.finish();
}

/// The solve cache on a repeated-pricing workload: a small set of
/// distinct pricings probed many times over, the access pattern elite
/// re-injection and archive replay produce during co-evolution.
fn bench_solve_cache(c: &mut Criterion) {
    let inst = generate(&GeneratorConfig::paper_class(250, 10), 42);
    let solver = RelaxationSolver::new(&inst);
    let distinct: Vec<Vec<f64>> =
        (0..8).map(|i| vec![10.0 + i as f64 * 3.0; inst.num_own()]).collect();
    let workload: Vec<&Vec<f64>> = (0..256).map(|i| &distinct[i % distinct.len()]).collect();

    // Untimed accounting pass: report hit rate and pivot reduction, and
    // hold the ISSUE's acceptance bar (hits > 0, fewer total pivots).
    let cold_pivots: u64 =
        workload.iter().map(|p| solver.solve(&inst.costs_for(p)).unwrap().pivots).sum();
    let cache: SolveCache<Relaxation> = SolveCache::new(1024);
    let mut cached_pivots = 0u64;
    for p in &workload {
        let (r, hit) =
            cache.get_or_insert_with(p, || solver.solve(&inst.costs_for(p)).unwrap());
        if !hit {
            cached_pivots += r.pivots;
        }
    }
    let s = cache.stats();
    assert!(s.hits > 0, "repeated pricings must hit the cache");
    assert!(
        cached_pivots < cold_pivots,
        "caching must reduce total simplex pivots ({cached_pivots} vs {cold_pivots})"
    );
    eprintln!(
        "solve_cache: {} probes, {} hits ({:.1}% hit rate), pivots {cold_pivots} -> \
         {cached_pivots} ({:.1}% reduction)",
        s.hits + s.misses,
        s.hits,
        100.0 * s.hits as f64 / (s.hits + s.misses) as f64,
        100.0 * (cold_pivots - cached_pivots) as f64 / cold_pivots as f64,
    );

    let mut group = c.benchmark_group("solve_cache");
    group.sample_size(10);
    group.bench_function("repeated_pricing_cold", |b| {
        b.iter(|| {
            let total: f64 = workload
                .iter()
                .map(|p| solver.solve(&inst.costs_for(p)).unwrap().lower_bound)
                .sum();
            black_box(total)
        })
    });
    group.bench_function("repeated_pricing_cached", |b| {
        b.iter(|| {
            let cache: SolveCache<Relaxation> = SolveCache::new(1024);
            let total: f64 = workload
                .iter()
                .map(|p| {
                    cache
                        .get_or_insert_with(p, || solver.solve(&inst.costs_for(p)).unwrap())
                        .0
                        .lower_bound
                })
                .sum();
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_solve_cache);
criterion_main!(benches);
