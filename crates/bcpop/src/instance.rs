//! The BCPOP instance model (Program 2 of the paper).

use std::fmt;

/// Errors raised by [`BcpopInstance::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// Dimension mismatch between fields.
    Shape(String),
    /// `n_own` exceeds the number of bundles.
    OwnBlockTooLarge {
        /// Requested own-block size.
        own: usize,
        /// Total bundle count.
        bundles: usize,
    },
    /// Some service cannot be covered even by buying every bundle.
    Uncoverable {
        /// The uncoverable service index.
        service: usize,
        /// Units available across the whole market.
        available: u64,
        /// Units required.
        required: u64,
    },
    /// A competitor bundle has a negative cost.
    NegativeCost {
        /// Offending bundle index.
        bundle: usize,
        /// Its cost.
        cost: f64,
    },
    /// The price cap for the CSP's bundles is not positive.
    BadPriceCap(f64),
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::Shape(msg) => write!(f, "shape error: {msg}"),
            InstanceError::OwnBlockTooLarge { own, bundles } => {
                write!(f, "own block {own} exceeds bundle count {bundles}")
            }
            InstanceError::Uncoverable { service, available, required } => write!(
                f,
                "service {service} requires {required} but the whole market offers {available}"
            ),
            InstanceError::NegativeCost { bundle, cost } => {
                write!(f, "bundle {bundle} has negative cost {cost}")
            }
            InstanceError::BadPriceCap(v) => write!(f, "price cap {v} must be positive"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// A Bi-level Cloud Pricing instance.
///
/// The market sells `M = num_bundles` bundles over `N = num_services`
/// services. The first `num_own` bundles belong to the CSP: their prices
/// are the upper-level decision variables (in `[0, price_cap]` each);
/// the remaining bundles carry fixed competitor costs.
#[derive(Debug, Clone, PartialEq)]
pub struct BcpopInstance {
    num_services: usize,
    num_bundles: usize,
    num_own: usize,
    /// Bundle-major coverage matrix: `q[j * N + k]` = units of service `k`
    /// in bundle `j`.
    q: Vec<u32>,
    /// Service requirements `b^k`, length `N`.
    b: Vec<u32>,
    /// Fixed costs of competitor bundles (`j ≥ num_own`); the first
    /// `num_own` entries are ignored.
    competitor_costs: Vec<f64>,
    /// Upper bound on each CSP bundle price.
    price_cap: f64,
    /// Cached per-bundle total coverage `Σ_k q_j^k`.
    total_coverage: Vec<u64>,
    /// Service→bundles inverted index in CSR form: entries for service
    /// `k` live at `covering[covering_offsets[k]..covering_offsets[k+1]]`
    /// as `(bundle, units)` pairs with `units > 0`, bundle-ascending.
    /// Buying a bundle only dirties the residual coverage of bundles
    /// sharing one of its services, which the incremental greedy decoder
    /// walks through this index.
    covering_offsets: Vec<usize>,
    covering: Vec<(u32, u32)>,
}

impl BcpopInstance {
    /// Assemble an instance from raw parts and validate it.
    pub fn new(
        num_services: usize,
        num_bundles: usize,
        num_own: usize,
        q: Vec<u32>,
        b: Vec<u32>,
        mut competitor_costs: Vec<f64>,
        price_cap: f64,
    ) -> Result<Self, InstanceError> {
        // The first `num_own` cost entries are semantically meaningless
        // (those bundles are priced by the upper level); normalize them
        // to zero so instance equality and serialization are canonical.
        let normalize_upto = num_own.min(competitor_costs.len());
        for c in competitor_costs.iter_mut().take(normalize_upto) {
            *c = 0.0;
        }
        if q.len() != num_bundles * num_services {
            return Err(InstanceError::Shape(format!(
                "q has {} entries, expected {}",
                q.len(),
                num_bundles * num_services
            )));
        }
        let total_coverage = (0..num_bundles)
            .map(|j| {
                q[j * num_services..(j + 1) * num_services].iter().map(|&v| v as u64).sum()
            })
            .collect();
        let mut covering_offsets = Vec::with_capacity(num_services + 1);
        let mut covering = Vec::new();
        covering_offsets.push(0);
        for k in 0..num_services {
            for j in 0..num_bundles {
                let units = q[j * num_services + k];
                if units > 0 {
                    covering.push((j as u32, units));
                }
            }
            covering_offsets.push(covering.len());
        }
        let inst = BcpopInstance {
            num_services,
            num_bundles,
            num_own,
            q,
            b,
            competitor_costs,
            price_cap,
            total_coverage,
            covering_offsets,
            covering,
        };
        inst.validate()?;
        Ok(inst)
    }

    /// Check the structural invariants (shape, coverability, costs).
    pub fn validate(&self) -> Result<(), InstanceError> {
        if self.q.len() != self.num_bundles * self.num_services {
            return Err(InstanceError::Shape(format!(
                "q has {} entries, expected {}",
                self.q.len(),
                self.num_bundles * self.num_services
            )));
        }
        if self.b.len() != self.num_services {
            return Err(InstanceError::Shape(format!(
                "b has {} entries, expected {}",
                self.b.len(),
                self.num_services
            )));
        }
        if self.competitor_costs.len() != self.num_bundles {
            return Err(InstanceError::Shape(format!(
                "costs has {} entries, expected {}",
                self.competitor_costs.len(),
                self.num_bundles
            )));
        }
        if self.num_own > self.num_bundles {
            return Err(InstanceError::OwnBlockTooLarge {
                own: self.num_own,
                bundles: self.num_bundles,
            });
        }
        if self.price_cap.is_nan() || self.price_cap <= 0.0 {
            return Err(InstanceError::BadPriceCap(self.price_cap));
        }
        // Non-empty lower-level search space: buying everything must cover
        // every requirement (the paper "ensured each modified instance has
        // non-empty search space").
        for k in 0..self.num_services {
            let available: u64 =
                (0..self.num_bundles).map(|j| self.coverage(j, k) as u64).sum();
            if available < self.b[k] as u64 {
                return Err(InstanceError::Uncoverable {
                    service: k,
                    available,
                    required: self.b[k] as u64,
                });
            }
        }
        for j in self.num_own..self.num_bundles {
            let c = self.competitor_costs[j];
            if c < 0.0 || c.is_nan() {
                return Err(InstanceError::NegativeCost { bundle: j, cost: c });
            }
        }
        Ok(())
    }

    /// Number of services `N` (covering constraints).
    pub fn num_services(&self) -> usize {
        self.num_services
    }

    /// Number of bundles `M` (columns).
    pub fn num_bundles(&self) -> usize {
        self.num_bundles
    }

    /// Number of CSP-owned bundles `L` (priced by the upper level).
    pub fn num_own(&self) -> usize {
        self.num_own
    }

    /// Units of service `k` in bundle `j` (`q_j^k`).
    #[inline]
    pub fn coverage(&self, bundle: usize, service: usize) -> u32 {
        self.q[bundle * self.num_services + service]
    }

    /// The coverage row of bundle `j` (all services).
    #[inline]
    pub fn bundle_coverage(&self, bundle: usize) -> &[u32] {
        &self.q[bundle * self.num_services..(bundle + 1) * self.num_services]
    }

    /// Total coverage `Σ_k q_j^k` of bundle `j` (cached).
    #[inline]
    pub fn total_coverage(&self, bundle: usize) -> u64 {
        self.total_coverage[bundle]
    }

    /// The bundles offering service `k`, as `(bundle, units)` pairs with
    /// `units > 0`, in ascending bundle order (cached inverted index).
    #[inline]
    pub fn covering_bundles(&self, service: usize) -> &[(u32, u32)] {
        &self.covering[self.covering_offsets[service]..self.covering_offsets[service + 1]]
    }

    /// Requirement `b^k` of service `k`.
    #[inline]
    pub fn requirement(&self, service: usize) -> u32 {
        self.b[service]
    }

    /// All requirements.
    pub fn requirements(&self) -> &[u32] {
        &self.b
    }

    /// Per-bundle price cap for the CSP's bundles.
    pub fn price_cap(&self) -> f64 {
        self.price_cap
    }

    /// Fixed competitor cost of bundle `j ≥ num_own`.
    ///
    /// # Panics
    /// Panics when `j < num_own` — the CSP's bundles have no fixed cost.
    pub fn competitor_cost(&self, bundle: usize) -> f64 {
        assert!(
            bundle >= self.num_own,
            "bundle {bundle} belongs to the CSP; its price is a decision variable"
        );
        self.competitor_costs[bundle]
    }

    /// Assemble the full lower-level cost vector for a given pricing of
    /// the CSP's bundles: `costs[j] = prices[j]` for `j < L`, competitor
    /// cost otherwise.
    ///
    /// # Panics
    /// Panics if `prices.len() != num_own`.
    pub fn costs_for(&self, prices: &[f64]) -> Vec<f64> {
        assert_eq!(prices.len(), self.num_own, "pricing vector length mismatch");
        let mut costs = self.competitor_costs.clone();
        costs[..self.num_own].copy_from_slice(prices);
        costs
    }

    /// Lower/upper bound vectors for the upper-level pricing box
    /// `[0, price_cap]^L` — the GA operators need them.
    pub fn price_bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![0.0; self.num_own], vec![self.price_cap; self.num_own])
    }

    /// `true` if `chosen` covers every service requirement.
    pub fn is_covering(&self, chosen: &[bool]) -> bool {
        debug_assert_eq!(chosen.len(), self.num_bundles);
        let mut remaining: Vec<i64> = self.b.iter().map(|&v| v as i64).collect();
        for (j, &sel) in chosen.iter().enumerate() {
            if sel {
                for (k, rem) in remaining.iter_mut().enumerate() {
                    *rem -= self.coverage(j, k) as i64;
                }
            }
        }
        remaining.iter().all(|&r| r <= 0)
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    use super::*;

    /// A tiny hand-checkable instance: 2 services, 4 bundles, first 2 owned.
    ///
    /// ```text
    /// bundle:      0 (own)  1 (own)  2 (comp, cost 4)  3 (comp, cost 3)
    /// service 0:   2        0        1                 1
    /// service 1:   0        2        1                 1
    /// b = [2, 2]
    /// ```
    pub fn tiny() -> BcpopInstance {
        BcpopInstance::new(
            2,
            4,
            2,
            vec![2, 0, 0, 2, 1, 1, 1, 1],
            vec![2, 2],
            vec![0.0, 0.0, 4.0, 3.0],
            10.0,
        )
        .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::tiny;
    use super::*;

    #[test]
    fn accessors_match_layout() {
        let inst = tiny();
        assert_eq!(inst.num_services(), 2);
        assert_eq!(inst.num_bundles(), 4);
        assert_eq!(inst.num_own(), 2);
        assert_eq!(inst.coverage(0, 0), 2);
        assert_eq!(inst.coverage(0, 1), 0);
        assert_eq!(inst.coverage(2, 1), 1);
        assert_eq!(inst.bundle_coverage(3), &[1, 1]);
        assert_eq!(inst.total_coverage(0), 2);
        assert_eq!(inst.total_coverage(2), 2);
        assert_eq!(inst.requirement(1), 2);
    }

    #[test]
    fn covering_index_matches_matrix() {
        let inst = tiny();
        assert_eq!(inst.covering_bundles(0), &[(0, 2), (2, 1), (3, 1)]);
        assert_eq!(inst.covering_bundles(1), &[(1, 2), (2, 1), (3, 1)]);
        // Consistency with the dense accessor on every (j, k).
        for k in 0..inst.num_services() {
            let from_index: Vec<(u32, u32)> = inst.covering_bundles(k).to_vec();
            let dense: Vec<(u32, u32)> = (0..inst.num_bundles())
                .filter(|&j| inst.coverage(j, k) > 0)
                .map(|j| (j as u32, inst.coverage(j, k)))
                .collect();
            assert_eq!(from_index, dense);
        }
    }

    #[test]
    fn costs_for_merges_prices_and_competitors() {
        let inst = tiny();
        let costs = inst.costs_for(&[1.5, 2.5]);
        assert_eq!(costs, vec![1.5, 2.5, 4.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn costs_for_wrong_len_panics() {
        tiny().costs_for(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "belongs to the CSP")]
    fn competitor_cost_of_own_bundle_panics() {
        tiny().competitor_cost(0);
    }

    #[test]
    fn is_covering_checks_all_services() {
        let inst = tiny();
        assert!(inst.is_covering(&[true, true, false, false]));
        assert!(!inst.is_covering(&[true, false, false, false]));
        assert!(inst.is_covering(&[false, false, true, true]));
        assert!(!inst.is_covering(&[false, false, true, false]));
        assert!(inst.is_covering(&[true, true, true, true]));
    }

    #[test]
    fn rejects_uncoverable_service() {
        let err =
            BcpopInstance::new(1, 2, 1, vec![1, 1], vec![5], vec![0.0, 1.0], 10.0).unwrap_err();
        assert!(matches!(
            err,
            InstanceError::Uncoverable { service: 0, available: 2, required: 5 }
        ));
    }

    #[test]
    fn rejects_shape_mismatches() {
        assert!(matches!(
            BcpopInstance::new(2, 2, 1, vec![1, 1, 1], vec![1, 1], vec![0.0, 1.0], 10.0),
            Err(InstanceError::Shape(_))
        ));
        assert!(matches!(
            BcpopInstance::new(2, 2, 1, vec![1, 1, 1, 1], vec![1], vec![0.0, 1.0], 10.0),
            Err(InstanceError::Shape(_))
        ));
    }

    #[test]
    fn rejects_negative_competitor_cost() {
        let err = BcpopInstance::new(1, 2, 1, vec![2, 2], vec![1], vec![0.0, -3.0], 10.0)
            .unwrap_err();
        assert!(matches!(err, InstanceError::NegativeCost { bundle: 1, .. }));
    }

    #[test]
    fn rejects_bad_price_cap() {
        let err =
            BcpopInstance::new(1, 2, 1, vec![2, 2], vec![1], vec![0.0, 3.0], 0.0).unwrap_err();
        assert!(matches!(err, InstanceError::BadPriceCap(_)));
    }

    #[test]
    fn rejects_own_block_too_large() {
        let err =
            BcpopInstance::new(1, 2, 3, vec![2, 2], vec![1], vec![0.0, 3.0], 1.0).unwrap_err();
        assert!(matches!(err, InstanceError::OwnBlockTooLarge { own: 3, bundles: 2 }));
    }

    #[test]
    fn price_bounds_are_box() {
        let (lo, hi) = tiny().price_bounds();
        assert_eq!(lo, vec![0.0, 0.0]);
        assert_eq!(hi, vec![10.0, 10.0]);
    }
}
