//! LP relaxation latency — the dominant kernel of every CARBON
//! generation (one solve per upper-level individual).

use bico_bcpop::{generate, GeneratorConfig, RelaxationSolver};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_relaxation");
    group.sample_size(20);
    for &(n, m) in &[(100usize, 5usize), (250, 10), (500, 30)] {
        let inst = generate(&GeneratorConfig::paper_class(n, m), 42);
        let solver = RelaxationSolver::new(&inst);
        let costs = inst.costs_for(&vec![50.0; inst.num_own()]);
        group.bench_function(format!("{n}x{m}"), |b| {
            b.iter(|| black_box(solver.solve(black_box(&costs)).unwrap().lower_bound))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
