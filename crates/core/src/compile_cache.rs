//! Cross-generation GP compile cache.
//!
//! CARBON re-decodes the same scoring tree many times: once per training
//! pricing in the lower-level fitness phase, once per pricing for the
//! champion in the upper-level phase — and elites, archive members, and
//! reproduction clones resurface the *same* tree generation after
//! generation. Lowering a tree to bytecode
//! ([`bico_gp::CompiledProgram`]) is pure, so all of those repeats can
//! share one compilation: the cache memoizes programs under the tree's
//! canonical structural encoding ([`bico_gp::structural_key`]) in the
//! sharded, capacity-bounded [`SolveCache`] used for lower-level
//! relaxations, and hands out [`Arc`]s so rayon workers share bytecode
//! while keeping private register files.
//!
//! Caching cannot change results: a hit returns a program byte-for-byte
//! identical to what a fresh compile would produce (lowering is
//! deterministic, keys are exact — constants compare by bit pattern),
//! so cached and uncached runs are bit-identical. Differential tests in
//! `tests/determinism.rs` assert this.

use bico_ea::cache::{CacheStats, SolveCache};
use bico_gp::{structural_key, CompiledProgram, Expr, PrimitiveSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A sharded, bounded, thread-safe cache of compiled GP programs keyed
/// by tree structure. `capacity == 0` disables storage: every probe
/// compiles fresh (and counts a miss), which is exactly the pre-cache
/// behaviour.
///
/// One cache is only valid for one [`PrimitiveSet`]: the structural key
/// encodes operator/terminal *ids*, which are meaningless across sets.
#[derive(Debug)]
pub struct GpCompileCache {
    cache: SolveCache<Arc<CompiledProgram>>,
    /// Wall-clock microseconds spent inside compile closures (cache
    /// misses only). Purely observational: timing a pure function does
    /// not perturb results, so accumulating inside rayon workers is
    /// safe.
    compile_micros: AtomicU64,
}

impl GpCompileCache {
    /// Create a cache holding at most `capacity` compiled programs
    /// (`0` = disabled).
    pub fn new(capacity: usize) -> Self {
        GpCompileCache { cache: SolveCache::new(capacity), compile_micros: AtomicU64::new(0) }
    }

    /// `true` iff the cache can store entries.
    pub fn is_enabled(&self) -> bool {
        self.cache.is_enabled()
    }

    /// The compiled program for `expr`, from the cache when possible.
    /// Returns the program and whether it was a hit.
    ///
    /// Panics on structurally invalid trees — callers compile evolved
    /// populations, which are valid by construction.
    pub fn get_or_compile(
        &self,
        expr: &Expr,
        ps: &PrimitiveSet,
    ) -> (Arc<CompiledProgram>, bool) {
        self.cache.get_or_insert_keyed(&structural_key(expr), || {
            let t0 = Instant::now();
            let program = Arc::new(
                CompiledProgram::compile(expr, ps)
                    .expect("evolved trees are structurally valid"),
            );
            self.compile_micros.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
            program
        })
    }

    /// Pin `expr`'s program: while pinned, capacity-overflow eviction
    /// passes over it (frequency-aware admission — CARBON pins each
    /// generation's elite set, whose trees are near-certain to be
    /// re-probed next generation). Applies immediately if the program is
    /// resident, otherwise on its next admission. No-op when disabled.
    pub fn pin(&self, expr: &Expr) {
        self.cache.pin(&structural_key(expr));
    }

    /// Unpin everything (start of a new generation's elite set).
    pub fn clear_pins(&self) {
        self.cache.clear_pins();
    }

    /// Number of currently pinned keys.
    pub fn pinned_len(&self) -> usize {
        self.cache.pinned_len()
    }

    /// Snapshot of hit/miss/insertion/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Cumulative wall-clock microseconds spent compiling (misses
    /// only). Monotone; emitters report per-generation deltas.
    pub fn compile_micros(&self) -> u64 {
        self.compile_micros.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bico_bcpop::bcpop_primitives;
    use bico_gp::parse_sexpr;

    #[test]
    fn structurally_equal_trees_share_one_program() {
        let ps = bcpop_primitives();
        let cache = GpCompileCache::new(64);
        let a = parse_sexpr("(+ c_j (* q_res b_res))", &ps).unwrap();
        let b = parse_sexpr("(+ c_j (* q_res b_res))", &ps).unwrap();
        let (pa, hit_a) = cache.get_or_compile(&a, &ps);
        assert!(!hit_a);
        let (pb, hit_b) = cache.get_or_compile(&b, &ps);
        assert!(hit_b, "structural twin must hit");
        assert!(Arc::ptr_eq(&pa, &pb), "hit must share the same program");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn different_trees_get_different_entries() {
        let ps = bcpop_primitives();
        let cache = GpCompileCache::new(64);
        let a = parse_sexpr("(+ c_j q_j)", &ps).unwrap();
        let b = parse_sexpr("(- c_j q_j)", &ps).unwrap();
        cache.get_or_compile(&a, &ps);
        let (_, hit) = cache.get_or_compile(&b, &ps);
        assert!(!hit);
        assert_eq!(cache.stats().insertions, 2);
    }

    #[test]
    fn pinned_program_outlives_capacity_overflow_churn() {
        let ps = bcpop_primitives();
        // Tiny capacity: every insert after the first must evict.
        let cache = GpCompileCache::new(1);
        let elite = parse_sexpr("(+ c_j (* q_res b_res))", &ps).unwrap();
        let (elite_prog, _) = cache.get_or_compile(&elite, &ps);
        cache.pin(&elite);
        // Churn through distinct trees; each wants the elite's only slot.
        for expr in ["(- c_j q_j)", "(* c_j q_j)", "(% c_j q_j)", "(+ c_j q_j)"] {
            let churn = parse_sexpr(expr, &ps).unwrap();
            cache.get_or_compile(&churn, &ps);
        }
        let (prog, hit) = cache.get_or_compile(&elite, &ps);
        assert!(hit, "pinned elite must survive the churn");
        assert!(Arc::ptr_eq(&elite_prog, &prog));
        // Unpinned, the next overflow may finally evict it.
        cache.clear_pins();
        assert_eq!(cache.pinned_len(), 0);
        for expr in ["(- c_j q_j)", "(* c_j q_j)"] {
            let churn = parse_sexpr(expr, &ps).unwrap();
            cache.get_or_compile(&churn, &ps);
        }
        let (_, hit) = cache.get_or_compile(&elite, &ps);
        assert!(!hit, "unpinned entry is subject to normal eviction");
    }

    #[test]
    fn disabled_cache_still_compiles() {
        let ps = bcpop_primitives();
        let cache = GpCompileCache::new(0);
        assert!(!cache.is_enabled());
        let e = parse_sexpr("(+ c_j q_j)", &ps).unwrap();
        let (p1, hit1) = cache.get_or_compile(&e, &ps);
        let (p2, hit2) = cache.get_or_compile(&e, &ps);
        assert!(!hit1 && !hit2);
        assert!(!Arc::ptr_eq(&p1, &p2), "disabled cache compiles fresh");
        assert_eq!(p1.num_instructions(), p2.num_instructions());
    }
}
