//! Individuals and the rayon-parallel fitness-evaluation driver.
//!
//! Fitness evaluation dominates wall-clock time in both CARBON and COBRA
//! (each lower-level evaluation is an LP solve plus a greedy pass), and
//! evaluations within a generation are independent — the textbook
//! data-parallel workload. [`evaluate_parallel`] maps a pure fitness
//! function over a population with rayon, preserving output order, so
//! results are identical to the sequential loop regardless of thread
//! count.

use rayon::prelude::*;

/// A genome paired with its (optionally computed) fitness.
#[derive(Debug, Clone, PartialEq)]
pub struct Individual<G> {
    /// The genome.
    pub genome: G,
    /// Fitness, if evaluated.
    pub fitness: Option<f64>,
}

impl<G> Individual<G> {
    /// An unevaluated individual.
    pub fn new(genome: G) -> Self {
        Individual { genome, fitness: None }
    }

    /// Fitness, panicking if not yet evaluated.
    pub fn fitness(&self) -> f64 {
        self.fitness.expect("individual not evaluated")
    }
}

/// Evaluate `genomes` in parallel with the pure function `f`,
/// returning fitnesses in input order.
///
/// `f` receives `(index, &genome)` so callers can derive per-item RNG
/// seeds from the index (never share an RNG across work items).
pub fn evaluate_parallel<G, F>(genomes: &[G], f: F) -> Vec<f64>
where
    G: Sync,
    F: Fn(usize, &G) -> f64 + Sync,
{
    genomes.par_iter().enumerate().map(|(i, g)| f(i, g)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential_order() {
        let genomes: Vec<u64> = (0..1000).collect();
        let f = |i: usize, g: &u64| (*g as f64) * 2.0 + i as f64;
        let par = evaluate_parallel(&genomes, f);
        let seq: Vec<f64> = genomes.iter().enumerate().map(|(i, g)| f(i, g)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn individual_accessors() {
        let mut ind = Individual::new(vec![1.0, 2.0]);
        assert_eq!(ind.fitness, None);
        ind.fitness = Some(3.5);
        assert_eq!(ind.fitness(), 3.5);
    }

    #[test]
    #[should_panic(expected = "not evaluated")]
    fn unevaluated_fitness_panics() {
        Individual::new(0u8).fitness();
    }

    #[test]
    fn empty_population() {
        let out = evaluate_parallel(&Vec::<u8>::new(), |_, _| 0.0);
        assert!(out.is_empty());
    }
}
