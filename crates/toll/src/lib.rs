#![warn(missing_docs)]

//! # bico-toll — the bi-level toll-setting problem
//!
//! The paper's related-work section singles out toll setting as the
//! classic bi-level application ("famous problems like the *Toll
//! setting problems* have been intensively studied" — Brotcorne et al.,
//! Kalashnikov et al.). This crate implements it as a second application
//! domain for the workspace's bi-level machinery, and as a counterpoint
//! to the BCPOP: here the **lower level is polynomial** (a shortest-path
//! problem solved exactly by Dijkstra), so a nested scheme is perfectly
//! viable — whereas CARBON's heuristic co-evolution earns its keep when
//! the lower level is NP-hard.
//!
//! Model (single- or multi-commodity, optimistic):
//!
//! * a road network with fixed travel costs; a subset of arcs is owned
//!   by the leader, who sets a toll `t_e ∈ [0, cap_e]` on each;
//! * each commodity (origin, destination, demand) routes along a
//!   cheapest path w.r.t. `cost_e + toll_e`;
//! * the leader collects `demand · Σ tolls` along the chosen path and
//!   maximizes total revenue; among equally cheap follower paths the
//!   one with the highest revenue is taken (optimistic tie-break,
//!   computed exactly over the shortest-path DAG).

pub mod graph;
pub mod problem;
pub mod solvers;

pub use graph::{Graph, ShortestPaths};
pub use problem::{Commodity, TollProblem};
pub use solvers::{solve_ea, solve_ea_observed, solve_grid, TollEaConfig, TollSolution};
