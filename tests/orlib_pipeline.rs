//! OR-library → covering → CARBON pipeline, exercising the same path a
//! user with the original paper data would follow.

mod common;

use bico::bcpop::orlib::parse_mknap;
use bico::core::{Carbon, CarbonConfig, CoevStrategy};
use common::load_weing_proven;

const MKNAP_SAMPLE: &str = "
1
 6 10 3800
 100 600 1200 2400 500 2000
 8 12 13 64 22 41
 8 12 13 75 22 41
 3 6 4 18 6 4
 5 10 8 32 6 12
 5 13 8 42 6 20
 5 13 8 48 6 20
 0 0 0 0 8 0
 3 0 4 0 8 0
 3 2 4 0 8 4
 3 2 4 8 8 4
 80 96 20 36 44 48 10 18 22 24
";

#[test]
fn mknap_to_carbon() {
    let mkp = parse_mknap(MKNAP_SAMPLE).unwrap().swap_remove(0);
    assert_eq!(mkp.n, 6);
    assert_eq!(mkp.m, 10);
    let inst = mkp.into_covering(0.34).unwrap();
    assert_eq!(inst.num_bundles(), 6);
    assert_eq!(inst.num_services(), 10);
    inst.validate().unwrap();

    let cfg = CarbonConfig {
        ul_pop_size: 10,
        ll_pop_size: 10,
        ul_archive_size: 10,
        ll_archive_size: 10,
        ul_evaluations: 300,
        ll_evaluations: 300,
        ..Default::default()
    };
    let r = Carbon::new(&inst, cfg).run(17);
    assert!(r.best_gap.is_finite());
    assert!(r.best_gap >= -1e-9);
    assert_eq!(r.best_pricing.len(), inst.num_own());
}

#[test]
fn fixture_file_round_trips_through_parse_convert_validate() {
    // The on-disk pipeline: an OR-library-format fixture is read from
    // tests/fixtures/, parsed, serialized back to the mknap number
    // stream, re-parsed to the identical problems, and each problem
    // survives the paper's ≤→≥ conversion into a validated instance.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/mknap_small.txt");
    let text = std::fs::read_to_string(path).expect("fixture present");
    let problems = parse_mknap(&text).unwrap();
    assert_eq!(problems.len(), 2);
    assert_eq!((problems[0].n, problems[0].m), (6, 10));
    assert_eq!((problems[1].n, problems[1].m), (10, 2));
    assert_eq!(problems[0].known_optimum, 3800.0);

    // Serialize back to the mknap format and re-parse: lossless.
    let mut back = format!("{}\n", problems.len());
    for p in &problems {
        back.push_str(&format!("{} {} {}\n", p.n, p.m, p.known_optimum));
        for block in [&p.profits, &p.weights, &p.capacities] {
            for v in block {
                back.push_str(&format!("{v} "));
            }
            back.push('\n');
        }
    }
    assert_eq!(parse_mknap(&back).unwrap(), problems);

    for (i, p) in problems.into_iter().enumerate() {
        let (n, m) = (p.n, p.m);
        let inst = p.into_covering(0.34).unwrap_or_else(|e| panic!("problem {i}: {e:?}"));
        assert_eq!(inst.num_bundles(), n, "problem {i}");
        assert_eq!(inst.num_services(), m, "problem {i}");
        inst.validate().unwrap_or_else(|e| panic!("problem {i}: {e:?}"));
        // The ≥-conversion guarantees a non-empty search space.
        assert!(inst.is_covering(&vec![true; inst.num_bundles()]), "problem {i}");
    }
}

#[test]
fn weing1_full_size_instance_flows_through_the_pipeline() {
    // A real OR-library instance at full size: weing1 (Weingartner–Ness,
    // 28 items × 2 knapsack constraints, published optimum 141278). The
    // shared loader re-proves the recorded optimum by exact dynamic
    // programming over the two capacity dimensions, so the fixture is
    // known-good data rather than a transcription taken on faith; the
    // instance then runs the same parse → convert → validate → CARBON
    // path as the toy fixtures.
    let mkp = load_weing_proven("mknap_weing1.txt", [600.0, 600.0], 141_278.0);

    // Convert, validate, and run a short CARBON smoke on the full-size
    // instance (enough budget for a handful of generations).
    let inst = mkp.into_covering(0.34).unwrap();
    assert_eq!(inst.num_bundles(), 28);
    assert_eq!(inst.num_services(), 2);
    assert_eq!(inst.num_own(), 10);
    inst.validate().unwrap();
    assert!(inst.is_covering(&vec![true; inst.num_bundles()]));

    let cfg = CarbonConfig {
        ul_pop_size: 10,
        ll_pop_size: 10,
        ul_archive_size: 10,
        ll_archive_size: 10,
        ul_evaluations: 120,
        ll_evaluations: 120,
        ..Default::default()
    };
    assert!(cfg.eval_matrix && cfg.decode_cache_capacity > 0, "matrix path defaults on");
    let r = Carbon::new(&inst, cfg).run(17);
    assert!(r.generations >= 1);
    assert!(r.best_gap.is_finite());
    assert!(r.best_gap >= -1e-9);
    assert_eq!(r.best_pricing.len(), inst.num_own());
}

#[test]
fn weing2_full_size_instance_flows_through_the_pipeline() {
    // The second Weingartner–Ness instance: the same 28 items as weing1
    // under tighter capacities (500/500), published optimum 130883 —
    // re-proven by the shared exact DP before anything downstream trusts
    // the fixture. The CARBON smoke runs under the two competitive
    // strategies introduced for the maximin substrate, so fitness
    // sharing and the hall-of-fame sampler are exercised on a real
    // OR-library instance, not just the synthetic games.
    let mkp = load_weing_proven("mknap_weing2.txt", [500.0, 500.0], 130_883.0);

    let inst = mkp.into_covering(0.34).unwrap();
    assert_eq!(inst.num_bundles(), 28);
    assert_eq!(inst.num_services(), 2);
    inst.validate().unwrap();
    assert!(inst.is_covering(&vec![true; inst.num_bundles()]));

    for strategy in [CoevStrategy::SharedFitness, CoevStrategy::HallOfFame] {
        let cfg = CarbonConfig {
            ul_pop_size: 10,
            ll_pop_size: 10,
            ul_archive_size: 10,
            ll_archive_size: 10,
            ul_evaluations: 120,
            ll_evaluations: 120,
            coev_strategy: strategy,
            ..Default::default()
        };
        let r = Carbon::new(&inst, cfg).run(17);
        assert!(r.generations >= 1, "{strategy:?}");
        assert!(r.best_gap.is_finite(), "{strategy:?}");
        assert!(r.best_gap >= -1e-9, "{strategy:?}");
        assert_eq!(r.best_pricing.len(), inst.num_own(), "{strategy:?}");
    }
}

#[test]
fn weing3_through_5_capacity_variants_flow_through_the_pipeline() {
    // weing3–weing5 (Weingartner–Ness): the same 28-item data as weing1
    // under the capacity variants (300,300), (300,600) and (600,300),
    // published optima 95677 / 119337 / 98796 — each re-proven by the
    // shared exact DP before anything downstream trusts the fixture.
    // weing6–weing8 are NOT wired here: weing6's published optimum
    // (130623) and weing7/weing8's 105-item data are not reconstructible
    // from the 28-item stream these fixtures share, and a fixture we
    // cannot re-prove in-test would be exactly the transcription-taken-
    // on-faith this suite exists to rule out.
    let weing1 = load_weing_proven("mknap_weing1.txt", [600.0, 600.0], 141_278.0);
    for (name, caps, optimum) in [
        ("mknap_weing3.txt", [300.0, 300.0], 95_677.0),
        ("mknap_weing4.txt", [300.0, 600.0], 119_337.0),
        ("mknap_weing5.txt", [600.0, 300.0], 98_796.0),
    ] {
        let mkp = load_weing_proven(name, caps, optimum);

        // The capacity variants share weing1's item data — only the
        // capacity row may differ between the fixtures.
        assert_eq!(mkp.profits, weing1.profits, "{name}: shared item profits");
        assert_eq!(mkp.weights, weing1.weights, "{name}: shared constraint rows");

        let inst = mkp.into_covering(0.34).unwrap();
        assert_eq!(inst.num_bundles(), 28, "{name}");
        assert_eq!(inst.num_services(), 2, "{name}");
        inst.validate().unwrap();
        assert!(inst.is_covering(&vec![true; inst.num_bundles()]), "{name}");

        let cfg = CarbonConfig {
            ul_pop_size: 10,
            ll_pop_size: 10,
            ul_archive_size: 10,
            ll_archive_size: 10,
            ul_evaluations: 120,
            ll_evaluations: 120,
            ..Default::default()
        };
        let r = Carbon::new(&inst, cfg).run(17);
        assert!(r.generations >= 1, "{name}");
        assert!(r.best_gap.is_finite(), "{name}");
        assert!(r.best_gap >= -1e-9, "{name}");
        assert_eq!(r.best_pricing.len(), inst.num_own(), "{name}");
    }
}

#[test]
fn zero_constraint_row_weights_are_tolerated() {
    // The Petersen instance has rows with zero weights for some items —
    // the conversion and validation must accept them.
    let mkp = parse_mknap(MKNAP_SAMPLE).unwrap().swap_remove(0);
    let inst = mkp.into_covering(0.2).unwrap();
    // Every requirement must still be coverable by the full market.
    assert!(inst.is_covering(&vec![true; inst.num_bundles()]));
}
