#![warn(missing_docs)]

//! # bico-bcpop — the Bi-level Cloud Pricing Optimization Problem
//!
//! The application case of the CARBON paper (§IV.B, Program 2):
//!
//! * a Cloud Service Provider (CSP, the **upper level**) prices its `L`
//!   bundles to maximize revenue `F = Σ_{j≤L} c_j x_j`;
//! * a rational Cloud Service Customer (CSC, the **lower level**) buys a
//!   set of bundles from the whole market of `M` bundles that covers its
//!   service requirements `Σ_j q_j^k x_j ≥ b^k` at minimum total cost
//!   `f = Σ_j c_j x_j`.
//!
//! The lower level is an NP-hard covering problem with non-binary
//! coefficients; the paper solves it heuristically with an evolved greedy
//! scoring function and measures quality by the %-gap to the LP
//! relaxation bound (Eq. 1).
//!
//! This crate provides:
//!
//! * [`BcpopInstance`] — the instance model (services × bundles matrix,
//!   requirements, competitor costs, the CSP's own bundle block);
//! * [`generate`](generator::generate) — a seeded synthetic generator
//!   reproducing the structure of the paper's modified OR-library MKP
//!   instances (9 classes: `n ∈ {100,250,500} × m ∈ {5,10,30}`);
//! * [`orlib`] — a parser for the OR-library `mknap` format plus the
//!   paper's `≤ → ≥` conversion, for anyone with the original files;
//! * [`RelaxationSolver`] — the lower-level LP relaxation (via
//!   `bico-lp`) yielding `LB(x)`, duals `d_k` and relaxed primal `x̄_j`;
//! * [`greedy_cover`] — the greedy covering heuristic parameterized by a
//!   [`Scorer`] (the GP phenotype), with redundancy elimination, plus
//!   [`greedy_cover_batched`] — the bit-identical fast path that keeps
//!   residual features incrementally up to date via the instance's
//!   service→bundles inverted index and scores each step's candidates as
//!   one batch (a single bytecode sweep for [`CompiledGpScorer`]);
//! * [`scoring`] — the Table I terminal binding ([`GpScorer`]) and
//!   handcrafted baseline scorers;
//! * [`gap_percent`] — Eq. 1, plus exact enumeration for small instances
//!   (test oracle).

pub mod bilevel;
pub mod exact;
pub mod generator;
pub mod greedy;
pub mod instance;
pub mod io;
pub mod orlib;
pub mod relaxation;
pub mod scoring;

pub use bilevel::{evaluate_pair, ll_cost, ul_revenue, BilevelEval};
pub use exact::exact_ll_optimum;
pub use generator::{generate, GeneratorConfig};
pub use greedy::{greedy_cover, greedy_cover_batched, CoverOutcome};
pub use instance::{BcpopInstance, InstanceError};
pub use io::{read_instance, write_instance};
pub use relaxation::{gap_percent, Relaxation, RelaxationSolver};
pub use scoring::{
    bcpop_primitives, bundle_features, BatchScorer, BundleFeatures, CompiledGpScorer,
    CostPerCoverageScorer, CostScorer, DualAdjustedScorer, FeatureColumns, GpScorer, Scorer,
    WeightScorer, NUM_TERMINALS,
};
